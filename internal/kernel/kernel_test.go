package kernel

import (
	"errors"
	"testing"
	"time"
)

func TestSocketBindListenAcceptRoundtrip(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	if err := p.Bind(fd, 80); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if err := p.Listen(fd, 16); err != nil {
		t.Fatalf("Listen: %v", err)
	}

	cc, err := k.Connect(80)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	cfd, conn, err := p.Accept(fd, time.Second)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if conn.ID != cc.ID() {
		t.Errorf("conn ids differ: %d vs %d", conn.ID, cc.ID())
	}

	if err := cc.Send([]byte("GET /")); err != nil {
		t.Fatal(err)
	}
	msg, err := p.Read(cfd, time.Second)
	if err != nil || string(msg) != "GET /" {
		t.Fatalf("Read = %q, %v", msg, err)
	}
	if err := p.Write(cfd, []byte("200 OK")); err != nil {
		t.Fatal(err)
	}
	resp, err := cc.Recv(time.Second)
	if err != nil || string(resp) != "200 OK" {
		t.Fatalf("Recv = %q, %v", resp, err)
	}
}

func TestBindPortClash(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd1 := p.Socket()
	if err := p.Bind(fd1, 80); err != nil {
		t.Fatal(err)
	}
	fd2 := p.Socket()
	if err := p.Bind(fd2, 80); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("rebind err = %v, want ErrAddrInUse", err)
	}
	// A second process cannot bind it either (the re-execution error).
	p2 := k.NewProc()
	fd3 := p2.Socket()
	if err := p2.Bind(fd3, 80); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("cross-process rebind err = %v, want ErrAddrInUse", err)
	}
}

func TestAcceptTimeout(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 80)
	p.Listen(fd, 16)
	if _, _, err := p.Accept(fd, 5*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("Accept err = %v, want ErrTimeout", err)
	}
	// Non-blocking poll form.
	if _, _, err := p.Accept(fd, 0); !errors.Is(err, ErrTimeout) {
		t.Errorf("Accept(0) err = %v, want ErrTimeout", err)
	}
}

func TestAcceptOnNonListenerFails(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	if _, _, err := p.Accept(fd, time.Millisecond); !errors.Is(err, ErrNotListening) {
		t.Errorf("err = %v, want ErrNotListening", err)
	}
	if _, _, err := p.Accept(99, time.Millisecond); !errors.Is(err, ErrBadFD) {
		t.Errorf("err = %v, want ErrBadFD", err)
	}
}

func TestForkInheritsFDs(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 80)
	p.Listen(fd, 16)

	child, err := p.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if child.Parent() != p.Pid() {
		t.Errorf("child parent = %d, want %d", child.Parent(), p.Pid())
	}
	// Same fd number resolves to the same kernel object in the child.
	obj, err := child.FD(fd)
	if err != nil {
		t.Fatalf("child FD: %v", err)
	}
	pobj, _ := p.FD(fd)
	if obj != pobj {
		t.Error("forked fd does not share the kernel object")
	}
	// Child can accept connections on the inherited listener.
	k.Connect(80)
	if _, _, err := child.Accept(fd, time.Second); err != nil {
		t.Errorf("child Accept: %v", err)
	}
}

func TestPidPinning(t *testing.T) {
	k := New()
	p := k.NewProc()
	p.PinNextPid(4242)
	child, err := p.Fork()
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if child.Pid() != 4242 {
		t.Errorf("pinned child pid = %d, want 4242", child.Pid())
	}
	// Pinning an in-use pid fails (reinitialization conflict).
	p.PinNextPid(4242)
	if _, err := p.Fork(); !errors.Is(err, ErrPidInUse) {
		t.Errorf("err = %v, want ErrPidInUse", err)
	}
	// Unpinned fork gets a fresh pid.
	c2, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if c2.Pid() == 4242 || c2.Pid() == p.Pid() {
		t.Errorf("unpinned child pid = %d", c2.Pid())
	}
}

func TestThreadIDPinning(t *testing.T) {
	k := New()
	p := k.NewProc()
	p.PinNextPid(777)
	tid, err := p.NewThreadID()
	if err != nil || tid != 777 {
		t.Fatalf("NewThreadID = %d, %v; want 777", tid, err)
	}
	tid2, err := p.NewThreadID()
	if err != nil || tid2 == 777 {
		t.Fatalf("second NewThreadID = %d, %v", tid2, err)
	}
}

func TestExitReleasesPidsAndFDs(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 80)
	p.Listen(fd, 16)
	pid := p.Pid()
	p.Exit()
	if _, ok := k.Proc(pid); ok {
		t.Error("exited pid still registered")
	}
	// Listener refcount dropped to zero: the port is free again.
	p2 := k.NewProc()
	fd2 := p2.Socket()
	if err := p2.Bind(fd2, 80); err != nil {
		t.Errorf("rebind after exit: %v", err)
	}
	if !p.Exited() {
		t.Error("Exited() = false")
	}
}

func TestListenerSurvivesOldVersionExit(t *testing.T) {
	// The live-update property: v1 binds, v2 inherits the fd, v1 exits,
	// the listener and its queued connections remain usable by v2.
	k := New()
	v1 := k.NewProc()
	fd := v1.Socket()
	v1.Bind(fd, 80)
	v1.Listen(fd, 16)

	v2 := k.NewProc()
	if err := v1.PassFDs(v2, []int{fd}); err != nil {
		t.Fatalf("PassFDs: %v", err)
	}
	// A client connects while neither version is accepting.
	cc, err := k.Connect(80)
	if err != nil {
		t.Fatal(err)
	}
	v1.Exit()
	// v2 accepts the connection queued before v1 died.
	cfd, conn, err := v2.Accept(fd, time.Second)
	if err != nil {
		t.Fatalf("v2 Accept after v1 exit: %v", err)
	}
	if conn.ID != cc.ID() {
		t.Error("wrong connection delivered")
	}
	if err := v2.Write(cfd, []byte("hi")); err != nil {
		t.Errorf("v2 Write: %v", err)
	}
	if msg, err := cc.Recv(time.Second); err != nil || string(msg) != "hi" {
		t.Errorf("client Recv = %q, %v", msg, err)
	}
}

func TestPassFDsPreservesNumbers(t *testing.T) {
	k := New()
	src := k.NewProc()
	a := src.Socket()
	b := src.Socket()
	dst := k.NewProc()
	if err := src.PassFDs(dst, []int{a, b}); err != nil {
		t.Fatalf("PassFDs: %v", err)
	}
	for _, n := range []int{a, b} {
		so, _ := src.FD(n)
		do, err := dst.FD(n)
		if err != nil || so != do {
			t.Errorf("fd %d: not shared (err %v)", n, err)
		}
	}
	// Installing over a busy number fails.
	obj, _ := src.FD(a)
	if err := dst.InstallFD(a, obj); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("InstallFD clash err = %v, want ErrAddrInUse", err)
	}
}

func TestReservedFDRange(t *testing.T) {
	k := New()
	p := k.NewProc()
	normal := p.Socket()
	if normal >= ReservedFDBase {
		t.Fatalf("normal fd %d in reserved range", normal)
	}
	p.SetReserveMode(true)
	r1 := p.Socket()
	r2 := p.Socket()
	if r1 != ReservedFDBase || r2 != ReservedFDBase+1 {
		t.Errorf("reserved fds = %d, %d; want %d, %d", r1, r2, ReservedFDBase, ReservedFDBase+1)
	}
	// Closing a reserved fd never recycles its number.
	p.Close(r1)
	r3 := p.Socket()
	if r3 == r1 {
		t.Error("reserved fd number reused after close")
	}
	p.SetReserveMode(false)
	n2 := p.Socket()
	if n2 >= ReservedFDBase {
		t.Errorf("post-reserve fd %d in reserved range", n2)
	}
}

func TestDup2(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	if err := p.Dup2(fd, 50); err != nil {
		t.Fatalf("Dup2: %v", err)
	}
	a, _ := p.FD(fd)
	b, err := p.FD(50)
	if err != nil || a != b {
		t.Error("dup'd fd does not share object")
	}
	if err := p.Dup2(999, 51); !errors.Is(err, ErrBadFD) {
		t.Errorf("Dup2 bad fd err = %v", err)
	}
}

func TestCloseRefcounting(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 80)
	p.Listen(fd, 1)
	p.Dup2(fd, 60)
	// Closing one reference keeps the listener alive.
	p.Close(fd)
	if _, err := k.Connect(80); err != nil {
		t.Errorf("listener died after closing one of two refs: %v", err)
	}
	p.Close(60)
	if _, err := k.Connect(80); err == nil {
		t.Error("listener alive after all refs closed")
	}
	if err := p.Close(60); !errors.Is(err, ErrBadFD) {
		t.Errorf("double close err = %v", err)
	}
}

func TestConnCloseSemantics(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 80)
	p.Listen(fd, 1)
	cc, _ := k.Connect(80)
	cfd, _, _ := p.Accept(fd, time.Second)

	cc.Send([]byte("last words"))
	cc.Close()
	// Buffered data is still readable after close.
	if msg, err := p.Read(cfd, time.Second); err != nil || string(msg) != "last words" {
		t.Fatalf("Read after close = %q, %v", msg, err)
	}
	if _, err := p.Read(cfd, 10*time.Millisecond); !errors.Is(err, ErrClosed) {
		t.Errorf("Read on drained closed conn err = %v, want ErrClosed", err)
	}
	if err := p.Write(cfd, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Write on closed conn err = %v, want ErrClosed", err)
	}
}

func TestPoll(t *testing.T) {
	k := New()
	p := k.NewProc()
	lfd := p.Socket()
	p.Bind(lfd, 80)
	p.Listen(lfd, 16)

	// Timeout with nothing ready.
	if _, err := p.Poll([]int{lfd}, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Poll err = %v, want ErrTimeout", err)
	}

	// Wakes on a new connection.
	done := make(chan struct{})
	go func() {
		defer close(done)
		fd, err := p.Poll([]int{lfd}, 2*time.Second)
		if err != nil || fd != lfd {
			t.Errorf("Poll = %d, %v; want %d", fd, err, lfd)
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if _, err := k.Connect(80); err != nil {
		t.Fatal(err)
	}
	<-done
	// Drain the connection queued by the wake test.
	if _, _, err := p.Accept(lfd, time.Second); err != nil {
		t.Fatal(err)
	}

	// Wakes on data on an accepted connection.
	cc, _ := k.Connect(80)
	_ = cc
	cfd, _, _ := p.Accept(lfd, time.Second)
	cc2, _ := k.Connect(80)
	cfd2, _, _ := p.Accept(lfd, time.Second)
	go func() {
		time.Sleep(5 * time.Millisecond)
		cc2.Send([]byte("ping"))
	}()
	fd, err := p.Poll([]int{cfd, cfd2}, 2*time.Second)
	if err != nil || fd != cfd2 {
		t.Errorf("Poll = %d, %v; want %d", fd, err, cfd2)
	}
}

func TestFiles(t *testing.T) {
	k := New()
	k.WriteFile("/etc/server.conf", []byte("workers=2\n"))
	p := k.NewProc()
	fd, err := p.Open("/etc/server.conf")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	data, err := p.ReadFile(fd, 1024)
	if err != nil || string(data) != "workers=2\n" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// EOF returns nil.
	data, err = p.ReadFile(fd, 1024)
	if err != nil || data != nil {
		t.Errorf("ReadFile at EOF = %q, %v", data, err)
	}
	if _, err := p.Open("/missing"); !errors.Is(err, ErrNoFile) {
		t.Errorf("Open missing err = %v", err)
	}
	// Create + write + direct read.
	wfd, err := p.Create("/var/log/server.log")
	if err != nil {
		t.Fatal(err)
	}
	p.WriteFileFD(wfd, []byte("started\n"))
	got, ok := k.ReadFileDirect("/var/log/server.log")
	if !ok || string(got) != "started\n" {
		t.Errorf("log = %q, %v", got, ok)
	}
}

func TestUnixSockets(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	if err := p.BindUnix(fd, "/run/mcr.sock"); err != nil {
		t.Fatal(err)
	}
	p.Listen(fd, 4)
	cc, err := k.ConnectUnix("/run/mcr.sock")
	if err != nil {
		t.Fatalf("ConnectUnix: %v", err)
	}
	cc.Send([]byte("update"))
	cfd, _, err := p.Accept(fd, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := p.Read(cfd, time.Second)
	if err != nil || string(msg) != "update" {
		t.Errorf("Read = %q, %v", msg, err)
	}
	if _, err := k.ConnectUnix("/nope"); err == nil {
		t.Error("ConnectUnix to unbound path succeeded")
	}
}

func TestListenerBacklogCount(t *testing.T) {
	k := New()
	p := k.NewProc()
	fd := p.Socket()
	p.Bind(fd, 8080)
	p.Listen(fd, 8)
	for i := 0; i < 3; i++ {
		if _, err := k.Connect(8080); err != nil {
			t.Fatal(err)
		}
	}
	if n := k.ListenerBacklog(8080); n != 3 {
		t.Errorf("backlog = %d, want 3", n)
	}
}

func TestPidNamespacesCoexist(t *testing.T) {
	// Old and new versions live in separate namespaces: the new version
	// can pin the exact numeric pids of the still-running old version.
	k := New()
	oldRoot := k.NewProc()
	oldChild, err := oldRoot.Fork()
	if err != nil {
		t.Fatal(err)
	}

	newRoot := k.NewProc()
	if newRoot.Namespace() == oldRoot.Namespace() {
		t.Fatal("new root shares old namespace")
	}
	newRoot.PinNextPid(oldChild.Pid())
	newChild, err := newRoot.Fork()
	if err != nil {
		t.Fatalf("pinning an old-namespace pid failed: %v", err)
	}
	if newChild.Pid() != oldChild.Pid() {
		t.Errorf("pids differ: %d vs %d", newChild.Pid(), oldChild.Pid())
	}
	if newChild.Namespace() != newRoot.Namespace() {
		t.Error("fork escaped its namespace")
	}
	// Within one namespace the pin still conflicts.
	newRoot.PinNextPid(newChild.Pid())
	if _, err := newRoot.Fork(); !errors.Is(err, ErrPidInUse) {
		t.Errorf("same-namespace pin err = %v, want ErrPidInUse", err)
	}
}

func TestNamespaceCleanupOnExit(t *testing.T) {
	k := New()
	p := k.NewProc()
	c, _ := p.Fork()
	c.Exit()
	p.Exit()
	if n := len(k.Procs()); n != 0 {
		t.Errorf("%d procs remain", n)
	}
}

func TestPidReservation(t *testing.T) {
	k := New()
	p := k.NewProc()
	p.ReservePids([]Pid{3, 4, 5})
	// Natural allocation skips the reserved range.
	tid, err := p.NewThreadID()
	if err != nil {
		t.Fatal(err)
	}
	if tid >= 3 && tid <= 5 {
		t.Fatalf("natural tid %d stole a reserved pid", tid)
	}
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if cp := child.Pid(); cp >= 3 && cp <= 5 {
		t.Fatalf("natural fork pid %d stole a reserved pid", cp)
	}
	// A pin consumes its reservation.
	p.PinNextPid(4)
	tid, err = p.NewThreadID()
	if err != nil || tid != 4 {
		t.Fatalf("pinned NewThreadID = %d, %v; want 4", tid, err)
	}
	// Reserving an id that is already live is a no-op (it cannot be
	// stolen), and does not block a later natural allocation scan.
	p.ReservePids([]Pid{p.Pid()})
	if _, err := p.NewThreadID(); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseReservedPids(t *testing.T) {
	k := New()
	p := k.NewProc()
	p.ReservePids([]Pid{3, 4, 5})
	// One reservation consumed by a pin, two still outstanding.
	p.PinNextPid(4)
	if tid, err := p.NewThreadID(); err != nil || tid != 4 {
		t.Fatalf("pinned tid = %d, %v; want 4", tid, err)
	}
	if got := p.ReservedPids(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Fatalf("ReservedPids = %v, want [3 5]", got)
	}
	if n := p.ReleaseReservedPids(); n != 2 {
		t.Fatalf("released %d reservations, want 2", n)
	}
	if got := p.ReservedPids(); len(got) != 0 {
		t.Fatalf("reservations survive release: %v", got)
	}
	// Released ids are fair game for natural allocation again: with 3 and
	// 5 free, the next two allocations from a fresh scan must be able to
	// land on them. (Allocation scans ascend from the last handed-out id,
	// so just check no error and no reserved-skip panic.)
	if _, err := p.NewThreadID(); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if n := p.ReleaseReservedPids(); n != 0 {
		t.Fatalf("second release freed %d", n)
	}
}

func TestNamespacePidsListsThreadsAndProcs(t *testing.T) {
	k := New()
	p := k.NewProc()
	tid, err := p.NewThreadID()
	if err != nil {
		t.Fatal(err)
	}
	child, err := p.Fork()
	if err != nil {
		t.Fatal(err)
	}
	pids := p.NamespacePids()
	want := map[Pid]bool{p.Pid(): true, tid: true, child.Pid(): true}
	for _, pid := range pids {
		delete(want, pid)
	}
	if len(want) != 0 {
		t.Fatalf("NamespacePids %v missing %v", pids, want)
	}
	// A second root lives in a different namespace: reservations and
	// listings do not leak across.
	other := k.NewProc()
	for _, pid := range other.NamespacePids() {
		if pid == tid || pid == child.Pid() {
			t.Fatalf("namespace leak: %d visible from other root", pid)
		}
	}
}
