// Package kernel implements the simulated operating-system substrate MCR's
// live-update machinery runs against. The paper depends on a specific set
// of Linux facilities: per-process file-descriptor tables, listening
// sockets whose accept queues survive while both program versions share
// them, fork/clone process and thread creation, pid namespaces that let a
// checkpoint-restart system pin specific ids (CRIU-style), and fd passing
// over Unix domain sockets for global inheritance. This package provides
// those facilities with the same observable semantics so that MCR's
// immutable-object handling (fd numbers, pids) faces the exact clash,
// reuse and inheritance problems the paper solves.
package kernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Pid identifies a simulated process or thread.
type Pid int

// Kernel errors mirror the errno cases the servers and MCR care about.
var (
	ErrBadFD        = errors.New("kernel: bad file descriptor")
	ErrAddrInUse    = errors.New("kernel: address already in use")
	ErrPidInUse     = errors.New("kernel: pid already in use")
	ErrTimeout      = errors.New("kernel: timed out")
	ErrClosed       = errors.New("kernel: endpoint closed")
	ErrNoProc       = errors.New("kernel: no such process")
	ErrNotListening = errors.New("kernel: socket not listening")
	ErrNotConn      = errors.New("kernel: not a connection")
	ErrNoFile       = errors.New("kernel: no such file")
	ErrInterrupted  = errors.New("kernel: interrupted (quiescence requested)")
)

// ReservedFDBase is the start of the reserved, non-reusable fd range used
// for global separability: fds created during v2 startup are allocated
// "in a reserved (nonreusable) range at the end of the file descriptor
// space" (§5) so they can never clash with inherited numbers.
const ReservedFDBase = 10000

// Kernel is the simulated OS instance. One Kernel is shared by all program
// versions and client workloads in a scenario, exactly as a real host
// kernel is shared by the old and new versions during a live update.
//
// Pid namespaces: every root process created with NewProc gets a fresh pid
// namespace; forks and threads stay inside their creator's namespace. This
// is the Linux-namespace facility (§5) that lets the new version restore
// the old version's numeric pids while the old version is still alive.
type Kernel struct {
	mu       sync.Mutex
	nextNS   int
	nss      map[int]*namespace
	ports    map[int]*Object    // bound TCP-like listeners by port
	paths    map[string]*Object // bound Unix-like listeners by path
	fs       map[string]*File
	nextCID  uint64        // connection ids
	activity chan struct{} // edge-triggered poll wakeup
}

type namespace struct {
	id      int
	nextPid Pid
	procs   map[Pid]*Proc
	// reserved pids are skipped by natural (unpinned) allocation and
	// handed out only to a matching PinNextPid — the deterministic pid
	// reservation mutable reinitialization needs so that a new version's
	// unpinned thread creations, racing the pinned replay under real
	// parallelism, can never steal an id the old version still owns.
	reserved map[Pid]bool
}

// New returns an empty kernel with a root filesystem.
func New() *Kernel {
	return &Kernel{
		nss:   make(map[int]*namespace),
		ports: make(map[int]*Object),
		paths: make(map[string]*Object),
		fs:    make(map[string]*File),
	}
}

// Proc is a simulated kernel process: a pid, an fd table, and a parent
// link. Threads share the fd table of their process, so the program layer
// models threads as goroutines issuing syscalls through their Proc.
type Proc struct {
	k      *Kernel
	ns     *namespace
	pid    Pid
	parent Pid

	mu           sync.Mutex
	fds          map[int]*fdEntry
	nextFD       int
	reservedNext int
	reserveMode  bool
	pinNext      []Pid // queued pid pins (namespace CLONE control)
	exited       bool
}

type fdEntry struct {
	obj *Object
}

// Pid returns the process id.
func (p *Proc) Pid() Pid { return p.pid }

// Parent returns the parent pid (0 for roots).
func (p *Proc) Parent() Pid { return p.parent }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// NewProc creates a root process in a fresh pid namespace (like a shell
// spawning the server; during live update, the new version's root).
func (k *Kernel) NewProc() *Proc {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextNS++
	ns := &namespace{id: k.nextNS, nextPid: 1, procs: make(map[Pid]*Proc), reserved: make(map[Pid]bool)}
	k.nss[ns.id] = ns
	return k.newProcLocked(ns, 0, 0)
}

func (k *Kernel) newProcLocked(ns *namespace, parent, want Pid) *Proc {
	pid := want
	if pid == 0 {
		for ns.procs[ns.nextPid] != nil || ns.reserved[ns.nextPid] {
			ns.nextPid++
		}
		pid = ns.nextPid
		ns.nextPid++
	} else {
		delete(ns.reserved, pid)
	}
	p := &Proc{
		k:            k,
		ns:           ns,
		pid:          pid,
		parent:       parent,
		fds:          make(map[int]*fdEntry),
		nextFD:       3, // 0,1,2 notionally stdio
		reservedNext: ReservedFDBase,
	}
	ns.procs[pid] = p
	return p
}

// Namespace returns the process's pid-namespace id.
func (p *Proc) Namespace() int { return p.ns.id }

// Proc returns a live process with the given pid in any namespace (first
// match; single-instance scenarios have only one namespace).
func (k *Kernel) Proc(pid Pid) (*Proc, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	for _, ns := range k.nss {
		if p, ok := ns.procs[pid]; ok {
			return p, true
		}
	}
	return nil, false
}

// Procs returns the pids of all live processes across namespaces in
// ascending order (duplicates possible across namespaces).
func (k *Kernel) Procs() []Pid {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []Pid
	for _, ns := range k.nss {
		for pid := range ns.procs {
			out = append(out, pid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PinNextPid queues a pid to be assigned to this process's next Fork (or
// thread creation), the pid-namespace trick user-space checkpoint-restart
// uses to restore ids: "MCR intercepts startup-time thread and process
// creation operations and relies on Linux namespaces to force the kernel
// to assign a specific ID" (§5).
func (p *Proc) PinNextPid(pid Pid) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinNext = append(p.pinNext, pid)
}

func (p *Proc) takePinLocked() Pid {
	if len(p.pinNext) == 0 {
		return 0
	}
	pid := p.pinNext[0]
	p.pinNext = p.pinNext[1:]
	return pid
}

// ReservePids marks pids as reserved in this process's namespace:
// natural allocation (Fork and NewThreadID without a pin) skips them, and
// a matching pin consumes the reservation. Pids already live in the
// namespace are skipped — they cannot be stolen in the first place. MCR
// reserves every id of the old version's namespace in the new version's
// before startup, so the replayed pinned creations can never lose a race
// against an unpinned creation (e.g. a forked worker's main thread,
// whose tid is not startup-log material).
func (p *Proc) ReservePids(pids []Pid) {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	for _, pid := range pids {
		if p.ns.procs[pid] == nil {
			p.ns.reserved[pid] = true
		}
	}
}

// ReleaseReservedPids drops every outstanding pid reservation in this
// process's namespace and returns how many were released. MCR calls it
// when an update is finalized — i.e. once the old instance can no longer
// be re-adopted (plain commit, or canary-window close): the old id space
// no longer needs protecting, so natural allocation may reuse it.
func (p *Proc) ReleaseReservedPids() int {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	n := len(p.ns.reserved)
	for pid := range p.ns.reserved {
		delete(p.ns.reserved, pid)
	}
	return n
}

// ReservedPids returns the pids currently reserved (and not yet consumed
// by a pinned creation) in this process's namespace, ascending.
func (p *Proc) ReservedPids() []Pid {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	out := make([]Pid, 0, len(p.ns.reserved))
	for pid := range p.ns.reserved {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NamespacePids returns every pid currently bound in this process's
// namespace (processes and thread ids, including ids of exited threads
// whose process is still alive), ascending.
func (p *Proc) NamespacePids() []Pid {
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	out := make([]Pid, 0, len(p.ns.procs))
	for pid := range p.ns.procs {
		out = append(out, pid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Fork creates a child process inheriting a copy of the fd table (fork
// semantics: fd numbers preserved, objects shared). If a pid was pinned,
// the child gets it; a pinned pid already in use is an error, surfaced to
// MCR as a reinitialization conflict.
func (p *Proc) Fork() (*Proc, error) {
	p.mu.Lock()
	want := p.takePinLocked()
	fdsCopy := make(map[int]*fdEntry, len(p.fds))
	for n, e := range p.fds {
		e.obj.ref()
		fdsCopy[n] = &fdEntry{obj: e.obj}
	}
	nextFD := p.nextFD
	p.mu.Unlock()

	p.k.mu.Lock()
	if want != 0 && p.ns.procs[want] != nil {
		p.k.mu.Unlock()
		for _, e := range fdsCopy {
			e.obj.unref()
		}
		return nil, fmt.Errorf("%w: %d", ErrPidInUse, want)
	}
	child := p.k.newProcLocked(p.ns, p.pid, want)
	p.k.mu.Unlock()

	child.mu.Lock()
	child.fds = fdsCopy
	child.nextFD = nextFD
	child.mu.Unlock()
	return child, nil
}

// NewThreadID allocates a thread id within the process, honoring pinning
// like Fork does. (Threads share the process image; only the id matters to
// MCR, which must restore ids stored in global data structures.)
func (p *Proc) NewThreadID() (Pid, error) {
	p.mu.Lock()
	want := p.takePinLocked()
	p.mu.Unlock()
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	if want != 0 {
		if p.ns.procs[want] != nil {
			return 0, fmt.Errorf("%w: %d", ErrPidInUse, want)
		}
		delete(p.ns.reserved, want)
		p.ns.procs[want] = p // thread ids resolve to their process
		return want, nil
	}
	for p.ns.procs[p.ns.nextPid] != nil || p.ns.reserved[p.ns.nextPid] {
		p.ns.nextPid++
	}
	tid := p.ns.nextPid
	p.ns.nextPid++
	p.ns.procs[tid] = p
	return tid, nil
}

// Exit terminates the process: all fds are closed and the pid freed.
// Listening sockets shared with other processes stay alive through their
// other references — the property that lets the old version die without
// tearing down inherited connections.
func (p *Proc) Exit() {
	p.mu.Lock()
	if p.exited {
		p.mu.Unlock()
		return
	}
	p.exited = true
	fds := p.fds
	p.fds = make(map[int]*fdEntry)
	p.mu.Unlock()
	for _, e := range fds {
		e.obj.unref()
	}
	p.k.mu.Lock()
	defer p.k.mu.Unlock()
	for pid, proc := range p.ns.procs {
		if proc == p {
			delete(p.ns.procs, pid)
		}
	}
	if len(p.ns.procs) == 0 {
		delete(p.k.nss, p.ns.id)
	}
}

// Exited reports whether the process has exited.
func (p *Proc) Exited() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exited
}

// --- fd table management -------------------------------------------------

// SetReserveMode switches new fd allocation into the reserved range
// (global separability for v2 startup) or back to normal.
func (p *Proc) SetReserveMode(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reserveMode = on
}

func (p *Proc) installLocked(obj *Object) int {
	var n int
	if p.reserveMode {
		n = p.reservedNext
		p.reservedNext++ // structurally never reused
	} else {
		for p.fds[p.nextFD] != nil {
			p.nextFD++
		}
		n = p.nextFD
		p.nextFD++
	}
	p.fds[n] = &fdEntry{obj: obj}
	return n
}

// InstallFD places obj at an exact fd number (global inheritance: the new
// version's first process receives every old fd at its original number).
func (p *Proc) InstallFD(n int, obj *Object) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fds[n] != nil {
		return fmt.Errorf("kernel: fd %d busy: %w", n, ErrAddrInUse)
	}
	obj.ref()
	p.fds[n] = &fdEntry{obj: obj}
	return nil
}

// FD resolves an fd number to its kernel object.
func (p *Proc) FD(n int) (*Object, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.fds[n]
	if e == nil {
		return nil, fmt.Errorf("%w: %d", ErrBadFD, n)
	}
	return e.obj, nil
}

// FDs returns the open fd numbers in ascending order.
func (p *Proc) FDs() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.fds))
	for n := range p.fds {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Close closes an fd.
func (p *Proc) Close(n int) error {
	p.mu.Lock()
	e := p.fds[n]
	delete(p.fds, n)
	p.mu.Unlock()
	if e == nil {
		return fmt.Errorf("%w: %d", ErrBadFD, n)
	}
	e.obj.unref()
	return nil
}

// Dup2 duplicates oldfd onto newfd, closing newfd first if open.
func (p *Proc) Dup2(oldfd, newfd int) error {
	p.mu.Lock()
	e := p.fds[oldfd]
	if e == nil {
		p.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrBadFD, oldfd)
	}
	old := p.fds[newfd]
	e.obj.ref()
	p.fds[newfd] = &fdEntry{obj: e.obj}
	p.mu.Unlock()
	if old != nil {
		old.obj.unref()
	}
	return nil
}

// PassFDs transfers the given fd numbers from p to dst, preserving the
// numbers — the SCM_RIGHTS Unix-domain-socket inheritance MCR uses. The
// source keeps its fds (the objects are shared), which is what makes the
// update reversible: rollback finds the old version's fd table untouched.
func (p *Proc) PassFDs(dst *Proc, nums []int) error {
	for _, n := range nums {
		obj, err := p.FD(n)
		if err != nil {
			return err
		}
		if err := dst.InstallFD(n, obj); err != nil {
			return err
		}
	}
	return nil
}
