package reinit

import (
	"errors"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/program"
	"repro/internal/replaylog"
	"repro/internal/types"
)

// forkerVersion is a master that opens two fds during startup — one kept
// open (immutable), one closed again before serving (mutable) — and forks
// a worker.
func forkerVersion() *program.Version {
	reg := types.NewRegistry()
	reg.Define(types.StructOf("st",
		types.Field{Name: "x", Type: types.Scalar(types.KindInt64)}))
	return &program.Version{
		Program: "forker", Release: "1.0", Types: reg,
		Globals:     []program.GlobalSpec{{Name: "st", Type: "st"}},
		Annotations: program.NewAnnotations(),
		Main: func(t *program.Thread) error {
			t.Enter("main")
			defer t.Exit()
			var lfd int
			err := t.Call("init", func() error {
				var err error
				lfd, err = t.Socket()
				if err != nil {
					return err
				}
				if err := t.Bind(lfd, 6100); err != nil {
					return err
				}
				if err := t.Listen(lfd, 16); err != nil {
					return err
				}
				// A temporary fd closed before startup ends: mutable.
				tmp, err := t.Socket()
				if err != nil {
					return err
				}
				if err := t.CloseFD(tmp); err != nil {
					return err
				}
				_, err = t.ForkProc("worker", func(w *program.Thread) error {
					return w.Loop("worker_loop", func() error {
						_, _, err := w.AcceptQP("accept@worker", lfd)
						if errors.Is(err, program.ErrStopped) {
							return program.ErrLoopExit
						}
						return err
					})
				})
				return err
			})
			if err != nil {
				return err
			}
			return t.Loop("master_loop", func() error {
				if err := t.WaitQP("sigwait@master"); errors.Is(err, program.ErrStopped) {
					return program.ErrLoopExit
				}
				return nil
			})
		},
	}
}

func startForker(t *testing.T) *program.Instance {
	t.Helper()
	inst, err := program.NewInstance(forkerVersion(), kernel.New(), program.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.WaitStartup(5 * time.Second); err != nil {
		t.Fatalf("startup: %v", err)
	}
	inst.CompleteStartup()
	return inst
}

func TestMarkLogsLiveFDsOnly(t *testing.T) {
	inst := startForker(t)
	defer inst.Terminate()
	MarkLogs(inst)
	recs := inst.Root().Log().Records()
	byCall := make(map[string][]replaylog.Record)
	for _, r := range recs {
		byCall[r.Call] = append(byCall[r.Call], r)
	}
	// socket+bind+listen on the live listener: immutable.
	for _, call := range []string{"bind", "listen"} {
		if len(byCall[call]) != 1 || !byCall[call][0].Immutable {
			t.Errorf("%s record not immutable: %+v", call, byCall[call])
		}
	}
	// Two socket records: the listener (immutable) and the temporary
	// (closed -> mutable).
	if len(byCall["socket"]) != 2 {
		t.Fatalf("socket records = %d", len(byCall["socket"]))
	}
	imm := 0
	for _, r := range byCall["socket"] {
		if r.Immutable {
			imm++
		}
	}
	if imm != 1 {
		t.Errorf("immutable socket records = %d, want 1", imm)
	}
	// close on a dead fd: mutable (re-executed live).
	if len(byCall["close"]) != 1 || byCall["close"][0].Immutable {
		t.Errorf("close record = %+v, want mutable", byCall["close"])
	}
	// fork: always immutable (pid pinning).
	if len(byCall["fork"]) != 1 || !byCall["fork"][0].Immutable {
		t.Errorf("fork record = %+v, want immutable", byCall["fork"])
	}
}

func TestSessionsListsPostStartupProcs(t *testing.T) {
	inst := startForker(t)
	defer inst.Terminate()
	// During startup only the worker (which has a log) exists: no
	// sessions.
	if s := Sessions(inst); len(s) != 0 {
		t.Errorf("sessions = %v, want none", s)
	}
}

func TestManagerReplayNewVersionStartup(t *testing.T) {
	old := startForker(t)
	defer old.Terminate()
	if _, err := old.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	MarkLogs(old)
	mgr := NewManager(old, replaylog.StrategyStackID)

	newInst, err := program.NewInstance(forkerVersion(), old.Kernel(), program.Options{
		Interceptor:   mgr,
		OnProcCreated: mgr.OnProcCreated,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := newInst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := newInst.WaitStartup(5 * time.Second); err != nil {
		t.Fatalf("v2 startup under replay: %v", err)
	}
	defer newInst.Terminate()
	newInst.CompleteStartup()

	// Same pids restored (in a different namespace).
	oldWorker := old.Procs()[1]
	newWorker := newInst.Procs()[1]
	if oldWorker.KProc().Pid() != newWorker.KProc().Pid() {
		t.Errorf("worker pid %d != %d", newWorker.KProc().Pid(), oldWorker.KProc().Pid())
	}
	if oldWorker.KProc().Namespace() == newWorker.KProc().Namespace() {
		t.Error("worker namespaces not separated")
	}
	// The listener fd is shared, not recreated.
	oldObj, _ := old.Root().KProc().FD(3)
	newObj, err := newInst.Root().KProc().FD(3)
	if err != nil || oldObj != newObj {
		t.Errorf("listener fd not inherited: %v", err)
	}
	// No leftovers, no conflicts; the temporary socket+close ran live.
	if left := mgr.Leftovers(); len(left) != 0 {
		t.Errorf("leftovers = %v", left)
	}
	replayed, live, conflicted := mgr.ReplayStats()
	if conflicted != 0 {
		t.Errorf("conflicts = %d", conflicted)
	}
	if replayed == 0 || live == 0 {
		t.Errorf("replayed/live = %d/%d, want both nonzero", replayed, live)
	}
	// Live-executed startup fds land in the reserved range (separability):
	// v2's own startup log records the temporary socket with a reserved
	// number, so it can never clash with an inherited fd.
	var sawReserved bool
	for _, r := range newInst.Root().Log().Records() {
		if r.Call == "socket" {
			if fd, ok := r.Result.(int); ok && fd >= kernel.ReservedFDBase {
				sawReserved = true
			}
		}
	}
	if !sawReserved {
		t.Error("live-executed startup socket not in reserved fd range")
	}
}

func TestManagerConflictOnOmittedOp(t *testing.T) {
	old := startForker(t)
	defer old.Terminate()
	if _, err := old.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	MarkLogs(old)
	mgr := NewManager(old, replaylog.StrategyStackID)

	// v2 omits the listen call.
	v2 := forkerVersion()
	v2.Main = func(t *program.Thread) error {
		t.Enter("main")
		defer t.Exit()
		err := t.Call("init", func() error {
			lfd, err := t.Socket()
			if err != nil {
				return err
			}
			return t.Bind(lfd, 6100)
		})
		if err != nil {
			return err
		}
		return t.Loop("master_loop", func() error {
			if err := t.WaitQP("sigwait@master"); errors.Is(err, program.ErrStopped) {
				return program.ErrLoopExit
			}
			return nil
		})
	}
	newInst, err := program.NewInstance(v2, old.Kernel(), program.Options{
		Interceptor:   mgr,
		OnProcCreated: mgr.OnProcCreated,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := newInst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := newInst.WaitStartup(5 * time.Second); err != nil {
		t.Fatalf("startup: %v", err)
	}
	defer newInst.Terminate()
	// The listen (and fork, worker-loop etc.) records were never
	// consumed: leftovers flag the omission.
	if left := mgr.Leftovers(); len(left) == 0 {
		t.Error("omitted operations produced no leftovers")
	}
}

func TestCollectUnusedAndReservedModeOff(t *testing.T) {
	old := startForker(t)
	defer old.Terminate()
	if _, err := old.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	MarkLogs(old)
	mgr := NewManager(old, replaylog.StrategyStackID)
	newInst, err := program.NewInstance(forkerVersion(), old.Kernel(), program.Options{
		Interceptor:   mgr,
		OnProcCreated: mgr.OnProcCreated,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := newInst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := newInst.WaitStartup(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	defer newInst.Terminate()
	newInst.CompleteStartup()
	_ = CollectUnused(old, newInst)
	ReservedModeOff(newInst)
	// New fds allocate normally again.
	fd := newInst.Root().KProc().Socket()
	if fd >= kernel.ReservedFDBase {
		t.Errorf("post-migration fd %d still reserved", fd)
	}
}
