// Package reinit implements mutable reinitialization (§5): the controlled
// startup of the new program version that replays the old version's
// startup log for operations on immutable state objects, inherits those
// objects (fd numbers, pids, memory addresses) via global inheritance, and
// keeps them unambiguous via global separability.
package reinit

import (
	"fmt"
	"sync"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/replaylog"
)

// MarkLogs runs the update-time immutable-marking pass over every old
// process's startup log: an operation is immutable — and therefore
// replayed — iff it manipulates external state the new version must
// inherit. Process and thread creations always replay (pids are immutable,
// class iii); fd operations replay iff every involved fd is still open at
// update time (an fd opened and closed again carries no inheritable
// kernel state, so the new version re-executes those operations live).
func MarkLogs(old *program.Instance) {
	for _, p := range old.Procs() {
		log := p.Log()
		if log == nil {
			continue
		}
		live := make(map[int]bool)
		for _, fd := range p.KProc().FDs() {
			live[fd] = true
		}
		log.MarkImmutable(func(r *replaylog.Record) bool {
			switch r.Call {
			case "fork", "thread_create", "exec", "daemonize":
				return true
			}
			if len(r.FDs) == 0 {
				return false
			}
			for _, fd := range r.FDs {
				if !live[fd] {
					return false
				}
			}
			return true
		})
	}
}

// Manager drives mutable reinitialization for one update: it implements
// program.Interceptor (replay) for the new instance and the OnProcCreated
// hook (per-process replay wiring, reserved fd mode, hierarchical fd
// inheritance).
type Manager struct {
	old      *program.Instance
	strategy replaylog.Strategy

	mu        sync.Mutex
	replayers map[program.ProcKey]*replaylog.Replayer
}

// NewManager builds the reinitialization manager for an update from old.
// MarkLogs must have run already (the engine does both).
func NewManager(old *program.Instance, strategy replaylog.Strategy) *Manager {
	m := &Manager{
		old:       old,
		strategy:  strategy,
		replayers: make(map[program.ProcKey]*replaylog.Replayer),
	}
	for _, p := range old.Procs() {
		if log := p.Log(); log != nil {
			m.replayers[p.Key()] = replaylog.NewReplayer(log, strategy)
		}
	}
	return m
}

// OnProcCreated wires a new-version process for reinitialization: reserved
// fd allocation (global separability) and inheritance of the old
// counterpart's fds at their original numbers (global inheritance,
// propagated down the process hierarchy). It is installed as the new
// instance's OnProcCreated option.
func (m *Manager) OnProcCreated(p *program.Proc) {
	p.KProc().SetReserveMode(true)
	oldProc, ok := m.old.ProcByKey(p.Key())
	if !ok {
		return
	}
	for _, fd := range oldProc.KProc().FDs() {
		obj, err := oldProc.KProc().FD(fd)
		if err != nil {
			continue
		}
		// Fork-propagated fds are already present at the right number
		// (same object); install only what is missing.
		if existing, err := p.KProc().FD(fd); err == nil {
			if existing != obj {
				p.Instance().Fail(fmt.Errorf("%w: inherited fd %d in %s resolves to a different object",
					program.ErrConflict, fd, p.Key()))
			}
			continue
		}
		if err := p.KProc().InstallFD(fd, obj); err != nil {
			p.Instance().Fail(fmt.Errorf("%w: inherit fd %d into %s: %v",
				program.ErrConflict, fd, p.Key(), err))
		}
	}
}

// Before implements program.Interceptor: conservative matching against the
// old startup log of the process's counterpart.
func (m *Manager) Before(t *program.Thread, c *program.Call) (bool, error) {
	m.mu.Lock()
	rp := m.replayers[t.Proc().Key()]
	m.mu.Unlock()
	if rp == nil {
		// No old counterpart (a process the update added): all live.
		return false, nil
	}
	rec, outcome := rp.Match(c.StackID, c.Stack, c.Name, c.Args)
	switch outcome {
	case replaylog.Live:
		return false, nil
	case replaylog.Conflicted:
		conflicts := rp.Conflicts()
		return false, fmt.Errorf("replay: %s", conflicts[len(conflicts)-1])
	}
	// Replayed.
	switch c.Name {
	case "fork", "thread_create", "exec":
		// Creation operations execute live with the recorded id pinned:
		// the pid is the immutable object, the process is real.
		if rec.Pid != 0 {
			t.Proc().KProc().PinNextPid(kernel.Pid(rec.Pid))
		}
		return false, nil
	default:
		// Pure immutable-object operations are not executed: the object
		// (fd and its in-kernel state) was inherited; the recorded result
		// gives the program the illusion of a fresh start.
		c.Result = rec.Result
		c.FDs = append([]int(nil), rec.FDs...)
		c.Pid = rec.Pid
		return true, nil
	}
}

var _ program.Interceptor = (*Manager)(nil)

// Leftovers returns, per process, the immutable records the new version's
// startup never consumed. Nonempty leftovers are a conflict: the update
// omitted a startup operation on inherited state.
func (m *Manager) Leftovers() map[program.ProcKey][]replaylog.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[program.ProcKey][]replaylog.Record)
	for key, rp := range m.replayers {
		if left := rp.Leftover(); len(left) > 0 {
			out[key] = left
		}
	}
	return out
}

// ReplayStats aggregates (replayed, live, conflicted) counts across all
// processes.
func (m *Manager) ReplayStats() (replayed, live, conflicted int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, rp := range m.replayers {
		r, l, c := rp.Stats()
		replayed += r
		live += l
		conflicted += c
	}
	return replayed, live, conflicted
}

// Sessions collects the live client sessions of the old version whose
// quiescent states the new startup cannot recreate: processes created
// after startup (per-connection handlers) and their connection fds. The
// engine passes them to the version's reinitialization handlers.
func Sessions(old *program.Instance) []program.SessionInfo {
	var out []program.SessionInfo
	for _, p := range old.Procs() {
		if p.Log() != nil {
			continue // startup-time process: recreated by the startup code
		}
		si := program.SessionInfo{
			Key:   p.Key(),
			Pid:   int(p.KProc().Pid()),
			Class: p.MainClass(),
		}
		for _, fd := range p.KProc().FDs() {
			obj, err := p.KProc().FD(fd)
			if err != nil {
				continue
			}
			if obj.Kind() == kernel.ObjConn {
				si.ConnFDs = append(si.ConnFDs, fd)
			}
		}
		out = append(out, si)
	}
	return out
}

// SessionConnFDs lists the connection fds held by one old process
// (including the root, for event-driven servers whose sessions live
// in-process). Used by handlers and by fd garbage collection.
func SessionConnFDs(p *program.Proc) []int {
	var out []int
	for _, fd := range p.KProc().FDs() {
		obj, err := p.KProc().FD(fd)
		if err != nil {
			continue
		}
		if obj.Kind() == kernel.ObjConn {
			out = append(out, fd)
		}
	}
	return out
}

// CollectUnused closes, in the new instance's processes, inherited fds
// that no old counterpart holds — "all the immutable objects that do not
// participate in replay operations in a given process are simply garbage
// collected when control migration completes" (§5).
func CollectUnused(old, new *program.Instance) int {
	collected := 0
	for _, np := range new.Procs() {
		op, ok := old.ProcByKey(np.Key())
		if !ok {
			continue
		}
		oldFDs := make(map[int]bool)
		for _, fd := range op.KProc().FDs() {
			oldFDs[fd] = true
		}
		for _, fd := range np.KProc().FDs() {
			if fd >= kernel.ReservedFDBase || oldFDs[fd] {
				continue
			}
			// Inherited from a sibling branch but unused here.
			obj, err := np.KProc().FD(fd)
			if err != nil || obj.Kind() == kernel.ObjListener {
				continue
			}
			_ = np.KProc().Close(fd)
			collected++
		}
	}
	return collected
}

// ReservedModeOff exits reserved-fd allocation in every process of the new
// instance (control migration complete).
func ReservedModeOff(inst *program.Instance) {
	for _, p := range inst.Procs() {
		p.KProc().SetReserveMode(false)
	}
}

// ReserveIDs applies the pid side of global separability to the new
// instance before startup: every id bound in the old version's namespace
// — process pids, live thread ids, and the ids of short-lived startup
// threads whose process still runs — is reserved in the new version's
// namespace. Unpinned creations (a forked worker's main thread tid is
// not startup-log material) then allocate around the old id space, so a
// pinned replay racing them under real parallelism can never find its id
// stolen. Without this, the httpd worker-pool replay intermittently
// conflicts ("pid already in use") at GOMAXPROCS >= 4.
func ReserveIDs(old *program.Instance, newRoot *program.Proc) {
	newRoot.KProc().ReservePids(old.Root().KProc().NamespacePids())
}

// ReleaseIDs is ReserveIDs' closing bracket: once an update is finalized
// — the old instance terminated for good, whether at plain commit or at
// the close of a canary window — the old version's id space no longer
// needs protecting and the outstanding reservations are dropped, letting
// natural allocation reuse those pids. While a canary window is open the
// engine deliberately does NOT call this: the old instance is still
// adoptable, and a rollback must find its pids unclaimed.
func ReleaseIDs(newRoot *program.Proc) int {
	return newRoot.KProc().ReleaseReservedPids()
}

// InheritPlacement applies the memory side of global inheritance to the
// new instance's root before startup: the placement plan for immutable
// startup-time heap objects and explicit reservations for immutable
// post-startup heap objects ("superobjects reallocated in the new version
// at startup", §5).
func InheritPlacement(root *program.Proc, plan map[mem.PlanKey]mem.Addr, reserve []*mem.Object) error {
	root.Heap().SetPlacementPlan(plan)
	for _, o := range reserve {
		if _, err := root.Heap().AllocAt(o.Addr, o.Size, nil, o.Site); err != nil {
			return fmt.Errorf("reinit: reserve immutable %s: %w", o, err)
		}
	}
	return nil
}
