// Package trace implements mutable tracing (§6): the hybrid
// precise/conservative GC-style traversal that transfers the dirty program
// state from the old version to the new one, relocating and
// type-transforming objects where type information is unambiguous and
// pinning ("immutable") or freezing ("nonupdatable") objects reached
// conservatively.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/types"
)

// RegionBreakdown counts pointers by the memory region of their source and
// target, the classification of Table 2 (Static / Dynamic / Lib).
type RegionBreakdown struct {
	Ptr         int // total pointers
	SrcStatic   int
	SrcDynamic  int
	SrcLib      int
	TargStatic  int
	TargDynamic int
	TargLib     int
}

func (b *RegionBreakdown) add(src, targ mem.ObjKind) {
	b.Ptr++
	switch src {
	case mem.ObjStatic, mem.ObjStack:
		b.SrcStatic++
	case mem.ObjHeap, mem.ObjMmap:
		b.SrcDynamic++
	case mem.ObjLib:
		b.SrcLib++
	}
	switch targ {
	case mem.ObjStatic, mem.ObjStack:
		b.TargStatic++
	case mem.ObjHeap, mem.ObjMmap:
		b.TargDynamic++
	case mem.ObjLib:
		b.TargLib++
	}
}

// PointerStats aggregates the precise and likely pointer populations of
// one process (Table 2 rows).
type PointerStats struct {
	Precise RegionBreakdown
	Likely  RegionBreakdown
}

// Add accumulates other into s (multi-process aggregation).
func (s *PointerStats) Add(other PointerStats) {
	addBreakdown(&s.Precise, other.Precise)
	addBreakdown(&s.Likely, other.Likely)
}

func addBreakdown(dst *RegionBreakdown, src RegionBreakdown) {
	dst.Ptr += src.Ptr
	dst.SrcStatic += src.SrcStatic
	dst.SrcDynamic += src.SrcDynamic
	dst.SrcLib += src.SrcLib
	dst.TargStatic += src.TargStatic
	dst.TargDynamic += src.TargDynamic
	dst.TargLib += src.TargLib
}

// Analysis is the conservative analysis result for one process: the
// object invariants of §6 plus pointer statistics.
type Analysis struct {
	// Immutable holds objects pointed to by likely pointers: they cannot
	// be relocated in the new version.
	Immutable map[mem.Addr]*mem.Object
	// Nonupdatable holds objects that are either immutable or contain
	// likely pointers: they cannot be type-transformed.
	Nonupdatable map[mem.Addr]bool
	// Stats is the pointer census.
	Stats PointerStats
}

// IsImmutable reports whether the object starting at addr is pinned.
func (a *Analysis) IsImmutable(addr mem.Addr) bool {
	_, ok := a.Immutable[addr]
	return ok
}

// likelyPointer validates one conservatively-scanned word: it must point
// into a live object, and if the target carries a data type tag the
// pointed offset must be plausibly aligned ("our pointer analysis uses the
// data type tag associated to the pointed object to reject illegal
// (unaligned) likely pointers").
func likelyPointer(ix *mem.ObjectIndex, word uint64) (*mem.Object, bool) {
	if word == 0 {
		return nil, false
	}
	target, ok := ix.Containing(mem.Addr(word))
	if !ok {
		return nil, false
	}
	if target.Type != nil {
		off := uint64(mem.Addr(word) - target.Addr)
		align := target.Type.Align
		if align > 1 && off%4 != 0 {
			return nil, false
		}
	}
	return target, true
}

// opaqueRangesOf returns the byte ranges of o that must be scanned
// conservatively under the policy, and the precise pointer slots.
func opaqueRangesOf(o *mem.Object, pol types.Policy) ([]types.OpaqueRange, []types.PtrSlot) {
	if o.Type == nil {
		// Uninstrumented object: fully opaque.
		return []types.OpaqueRange{{Offset: 0, Size: o.Size}}, nil
	}
	l := types.LayoutOf(o.Type, pol)
	return l.Opaques, l.Ptrs
}

// AnalyzeProc runs the conservative analysis over every live object of the
// process: precise pointer slots are censused and validated; opaque areas
// are scanned for likely pointers; immutability and nonupdatability
// invariants are derived. Library objects are scanned only if listed in
// transferLibs (§6: "MCR does not conservatively analyze nor transfer
// shared library state by default").
func AnalyzeProc(p *program.Proc, pol types.Policy, transferLibs map[string]bool) (*Analysis, error) {
	an := &Analysis{
		Immutable:    make(map[mem.Addr]*mem.Object),
		Nonupdatable: make(map[mem.Addr]bool),
	}
	ix := p.Index()
	as := p.Space()
	for _, o := range ix.All() {
		if o.Kind == mem.ObjLib && !transferLibs[o.Name] {
			continue
		}
		opaques, ptrs := opaqueRangesOf(o, pol)
		// Census precise pointers.
		for _, slot := range ptrs {
			if slot.Offset+8 > o.Size {
				continue
			}
			word, err := as.ReadWord(o.Addr + mem.Addr(slot.Offset))
			if err != nil {
				return nil, fmt.Errorf("trace: read %s+%d: %w", o, slot.Offset, err)
			}
			if word == 0 || slot.Func {
				continue
			}
			if target, ok := ix.Containing(mem.Addr(word)); ok {
				an.Stats.Precise.add(o.Kind, target.Kind)
			}
		}
		// Conservatively scan opaque ranges.
		hasLikely := false
		for _, r := range opaques {
			end := r.Offset + r.Size
			if end > o.Size {
				end = o.Size
			}
			for off := (r.Offset + 7) &^ 7; off+8 <= end; off += 8 {
				word, err := as.ReadWord(o.Addr + mem.Addr(off))
				if err != nil {
					return nil, fmt.Errorf("trace: scan %s+%d: %w", o, off, err)
				}
				target, ok := likelyPointer(ix, word)
				if !ok {
					continue
				}
				hasLikely = true
				an.Stats.Likely.add(o.Kind, target.Kind)
				an.Immutable[target.Addr] = target
				an.Nonupdatable[target.Addr] = true
			}
		}
		if hasLikely {
			an.Nonupdatable[o.Addr] = true
		}
	}
	return an, nil
}

// AnalyzeInstance analyzes every process of the instance.
func AnalyzeInstance(inst *program.Instance, pol types.Policy, transferLibs map[string]bool) (map[program.ProcKey]*Analysis, error) {
	out := make(map[program.ProcKey]*Analysis)
	for _, p := range inst.Procs() {
		an, err := AnalyzeProc(p, pol, transferLibs)
		if err != nil {
			return nil, fmt.Errorf("trace: analyze %s: %w", p.Key(), err)
		}
		out[p.Key()] = an
	}
	return out, nil
}

// AggregateStats sums the per-process pointer statistics (Table 2 reports
// per-program aggregates).
func AggregateStats(analyses map[program.ProcKey]*Analysis) PointerStats {
	var total PointerStats
	keys := make([]program.ProcKey, 0, len(analyses))
	for k := range analyses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Seq < keys[j].Seq
	})
	for _, k := range keys {
		total.Add(analyses[k].Stats)
	}
	return total
}

// ImmutableHeapPlan extracts, from an analysis, the global-reallocation
// placement plan for startup-time heap objects (handed to the new
// version's allocator) and the set of non-startup immutable heap objects
// the engine must pre-reserve before startup.
func ImmutableHeapPlan(an *Analysis) (plan map[mem.PlanKey]mem.Addr, reserve []*mem.Object) {
	plan = make(map[mem.PlanKey]mem.Addr)
	for _, o := range an.Immutable {
		if o.Kind != mem.ObjHeap {
			continue
		}
		if o.Startup && o.Site != 0 {
			plan[mem.PlanKey{Site: o.Site, Seq: o.Seq}] = o.Addr
		} else {
			reserve = append(reserve, o)
		}
	}
	sort.Slice(reserve, func(i, j int) bool { return reserve[i].Addr < reserve[j].Addr })
	return plan, reserve
}

// ImmutableStatics extracts the pinned-statics map (symbol -> address) the
// engine passes to the new version's layout, the offline-relinking step.
func ImmutableStatics(an *Analysis) map[string]uint64 {
	out := make(map[string]uint64)
	for _, o := range an.Immutable {
		if o.Kind == mem.ObjStatic && o.Name != "" {
			out[o.Name] = uint64(o.Addr)
		}
	}
	return out
}

// CombinedPlacement merges the global-reallocation requirements of every
// process (§5: "coalescing overlapping memory objects from different
// processes in the old version into 'superobjects' reallocated in the new
// version at startup"). It returns the site/seq placement plan (dropped
// to explicit reservations on cross-process conflicts), the coalesced
// reservation spans for the new root's heap (propagated to children by
// fork semantics), and the union of pinned statics.
func CombinedPlacement(analyses map[program.ProcKey]*Analysis) (map[mem.PlanKey]mem.Addr, []*mem.Object, map[string]uint64) {
	plan := make(map[mem.PlanKey]mem.Addr)
	statics := make(map[string]uint64)
	var rawReserve []*mem.Object
	keys := make([]program.ProcKey, 0, len(analyses))
	for k := range analyses {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Seq < keys[j].Seq
	})
	for _, k := range keys {
		an := analyses[k]
		p, r := ImmutableHeapPlan(an)
		for pk, addr := range p {
			if prev, dup := plan[pk]; dup && prev != addr {
				// Same allocation identity pinned at different addresses
				// in different processes (post-fork divergence): fall
				// back to explicit reservations for both.
				delete(plan, pk)
				rawReserve = append(rawReserve,
					&mem.Object{Addr: prev, Size: 16, Kind: mem.ObjHeap},
					&mem.Object{Addr: addr, Size: 16, Kind: mem.ObjHeap})
				continue
			}
			plan[pk] = addr
		}
		rawReserve = append(rawReserve, r...)
		for name, addr := range ImmutableStatics(an) {
			statics[name] = addr
		}
	}
	return plan, coalesce(rawReserve), statics
}

// coalesce merges overlapping or chunk-adjacent reservation ranges into
// superobjects.
func coalesce(objs []*mem.Object) []*mem.Object {
	if len(objs) == 0 {
		return nil
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Addr < objs[j].Addr })
	const headerMargin = 32 // in-band chunk header reserved before user data
	var out []*mem.Object
	cur := &mem.Object{Addr: objs[0].Addr, Size: objs[0].Size, Kind: mem.ObjHeap,
		Name: "mcr:superobject"}
	for _, o := range objs[1:] {
		if o.Addr <= cur.End()+headerMargin {
			if end := o.End(); end > cur.End() {
				cur.Size = uint64(end - cur.Addr)
			}
			continue
		}
		out = append(out, cur)
		cur = &mem.Object{Addr: o.Addr, Size: o.Size, Kind: mem.ObjHeap,
			Name: "mcr:superobject"}
	}
	return append(out, cur)
}
