package trace

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/types"
)

// shadowInvalidator is the optional interface a ShadowReader implements to
// learn that an object's page frames left the old address space
// (checkpoint.ProcShadow implements it): its captured shadow must never be
// served again.
type shadowInvalidator interface {
	Invalidate(o *mem.Object)
}

// adoptPages is the zero-copy fast path (the simulated analogue of the
// paper's VMA remap): classify whole old-instance pages as adoptable and
// move their frames into the new address space instead of copying object
// by object. A page is adoptable only when the move is provably
// bit-identical to the copy path:
//
//   - every old object overlapping the page pairs to a same-address,
//     same-size counterpart with no transformation and no user handler,
//     and actually needs copying (a skipped-clean startup object's
//     reinitialized bytes must win, so its pages never move);
//   - each such object is pointer-free and policy-opaque-free
//     (types.AdoptCompatible) — or its pointer remap is provably the
//     identity: every word the copy path would rewrite (the precise
//     pointer slots; opaque ranges and untyped contents travel verbatim
//     on both paths) already holds its post-remap value;
//   - every new-version object overlapping the page is exactly the pair
//     target of one of those old objects (nothing new-only to clobber);
//   - an object moves only if all of its pages move, and a page moves
//     only if all of its objects move (computed as a shrinking fixpoint).
//
// Bytes on a donated page outside any object (in-band chunk headers,
// alignment gaps, free-chunk words) travel with the frame; the simulation
// never reads them back — allocator metadata is authoritative in Go
// structures — so clobbering the new version's gap bytes with the old
// frame's is unobservable. Runs sequentially between pair and
// copyContents; under VerifyShadows each adopted object's source bytes are
// digested before its frames leave, keeping Stats.Checksum identical to an
// adoption-off run.
func (pt *procTransfer) adoptPages(reachable []*mem.Object) error {
	if !pt.opts.Adopt {
		return nil
	}
	oldAS, newAS := pt.oldProc.Space(), pt.newProc.Space()

	// identityRemap reports whether moving o's frames is bit-identical to
	// copying it: the copy path (transferObject on a no-transform pair)
	// copies the object verbatim and then rewrites only its precise
	// pointer slots through RemapPtr. Untyped objects have no slots, so
	// their copy is always verbatim; a typed object qualifies when every
	// non-nil slot value already remaps to itself (its pointees kept
	// their addresses — likely-pointer targets always do, the analysis
	// pinned them immutable). Opaque ranges are never rewritten by the
	// copy path, so they never disqualify a frame move.
	identityRemap := func(o *mem.Object) bool {
		if o.Type == nil {
			return true
		}
		l := types.LayoutOf(o.Type, pt.opts.Policy)
		for _, slot := range l.Ptrs {
			if slot.Func {
				continue
			}
			word, err := oldAS.ReadWord(o.Addr + mem.Addr(slot.Offset))
			if err != nil {
				return false
			}
			if word == 0 {
				continue
			}
			if nv, ok := pt.RemapPtr(word); ok && nv != word {
				return false
			}
		}
		return true
	}

	elig := make(map[mem.Addr]*pairEntry)
	for _, o := range reachable {
		e := pt.pairs[o.Addr]
		if e == nil || e.newObj == nil || e.transform != nil {
			continue
		}
		if e.newObj.Addr != o.Addr || e.newObj.Size != o.Size {
			continue
		}
		if _, hasHandler := pt.ann.ObjHandler(o.Name); hasHandler {
			continue
		}
		needsCopy := pt.dirty[o.Addr] || !o.Startup || pt.opts.DisableDirtyFilter
		if o.Kind == mem.ObjHeap && o.Startup && pt.bySiteSeq[mem.PlanKey{Site: o.Site, Seq: o.Seq}] == nil {
			needsCopy = true
		}
		if !needsCopy {
			continue
		}
		if !types.AdoptCompatible(o.Type, e.newObj.Type, pt.opts.Policy) && !identityRemap(o) {
			continue
		}
		elig[o.Addr] = e
	}
	if len(elig) == 0 {
		return nil
	}

	// Candidate pages: enumerated from eligible objects, kept only when
	// fully mapped on both sides, fully covered old-side by eligible
	// objects, and covered new-side by exactly their pair targets.
	pagesOf := func(o *mem.Object) []mem.Addr {
		var out []mem.Addr
		for pb := o.Addr &^ mem.Addr(mem.PageSize-1); pb < o.End(); pb += mem.PageSize {
			out = append(out, pb)
		}
		return out
	}
	oldIx, newIx := pt.oldProc.Index(), pt.newProc.Index()
	cand := make(map[mem.Addr]bool)
	for _, e := range elig {
		for _, pb := range pagesOf(e.oldObj) {
			if _, seen := cand[pb]; seen {
				continue
			}
			ok := oldAS.Mapped(pb, mem.PageSize) && newAS.Mapped(pb, mem.PageSize)
			if ok {
				for _, po := range oldIx.OnPages([]mem.Addr{pb}) {
					// Scratch overlay metadata is never transferred and
					// never read back: its bytes ride along like
					// allocator gap bytes on either side.
					if po.Scratch {
						continue
					}
					if elig[po.Addr] == nil {
						ok = false
						break
					}
				}
			}
			if ok {
				for _, pn := range newIx.OnPages([]mem.Addr{pb}) {
					if pn.Scratch {
						continue
					}
					en := elig[pn.Addr]
					if en == nil || en.newObj != pn {
						ok = false
						break
					}
				}
			}
			cand[pb] = ok
		}
	}

	// Fixpoint: an object moves only if all its pages are candidates; a
	// page stays a candidate only if all its objects move. Demoting a page
	// demotes its objects, which can demote their other pages.
	for changed := true; changed; {
		changed = false
		for pb, ok := range cand {
			if !ok {
				continue
			}
			for _, po := range oldIx.OnPages([]mem.Addr{pb}) {
				if po.Scratch {
					continue
				}
				whole := true
				for _, opb := range pagesOf(po) {
					if !cand[opb] {
						whole = false
						break
					}
				}
				if !whole {
					cand[pb] = false
					changed = true
					break
				}
			}
		}
	}

	var pages []mem.Addr
	for pb, ok := range cand {
		if ok {
			pages = append(pages, pb)
		}
	}
	if len(pages) == 0 {
		return nil
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	pt.adopted = make(map[mem.Addr]bool)
	inv, _ := pt.shadow.(shadowInvalidator)
	for _, e := range elig {
		o := e.oldObj
		whole := true
		for _, pb := range pagesOf(o) {
			if !cand[pb] {
				whole = false
				break
			}
		}
		if !whole {
			continue
		}
		if pt.opts.VerifyShadows {
			// Digest the source bytes while the frames are still here, so
			// the checksum matches an adoption-off run bit for bit.
			if err := pt.verifySource(o, o.Size, nil, &pt.stats); err != nil {
				return err
			}
		}
		if inv != nil {
			inv.Invalidate(o)
		}
		pt.adopted[o.Addr] = true
		pt.stats.ObjectsTransferred++
		pt.stats.BytesTransferred += o.Size
		pt.stats.BytesAdopted += o.Size
	}
	for _, pb := range pages {
		f, err := oldAS.DonatePage(pb)
		if err != nil {
			return err
		}
		if err := newAS.AdoptPage(pb, f); err != nil {
			return err
		}
		if pt.opts.Ledger != nil {
			pt.opts.Ledger.Record(oldAS, newAS, pb, f)
		}
		pt.stats.PagesAdopted++
	}
	return nil
}
