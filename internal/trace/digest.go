package trace

import (
	"fmt"
	"hash/fnv"

	"repro/internal/program"
)

// StateDigest hashes an instance's entire object universe — identity
// (address, size, kind, name) and raw contents, in canonical per-process
// index order — into one FNV-64a word. Two instances with equal digests
// hold bit-identical state; a digest taken before and after an event
// proves the event left the state untouched. The canary layer leans on
// this twice: the old instance's digest must not drift while it sits
// adoptable behind an open window (its warm shadows stay valid), and a
// reverted update must hand back exactly the state it checkpointed.
func StateDigest(inst *program.Instance) (uint64, error) {
	h := fnv.New64a()
	for _, p := range inst.Procs() {
		for _, o := range p.Index().All() {
			if o.Scratch {
				// Framework-owned overlay metadata is not program state:
				// it is regenerated per version and never read back, and
				// page adoption moves its bytes freely with the frame.
				continue
			}
			fmt.Fprintf(h, "%x:%x:%d:%s;", o.Addr, o.Size, o.Kind, o.Name)
			buf := make([]byte, o.Size)
			if err := p.Space().ReadAt(o.Addr, buf); err != nil {
				return 0, fmt.Errorf("trace: digest %s at %#x: %w", p.Key(), o.Addr, err)
			}
			h.Write(buf)
		}
	}
	return h.Sum64(), nil
}
