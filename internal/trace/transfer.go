package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/types"
)

// ErrTransferConflict marks a state-transfer conflict: the update changed
// something mutable tracing cannot remap automatically (a nonupdatable
// object's type, a semantic type change without a handler, a missing
// process counterpart). Conflicts abort the update and trigger rollback.
var ErrTransferConflict = errors.New("trace: state transfer conflict")

// ErrCanceled is returned by discovery when Options.Cancel fires: the
// update engine is rolling back for an unrelated reason and wants the
// in-flight old-side work abandoned promptly.
var ErrCanceled = errors.New("trace: discovery canceled")

func conflictf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTransferConflict, fmt.Sprintf(format, args...))
}

// Stats summarizes one state transfer (per process, or aggregated).
type Stats struct {
	ObjectsDiscovered   int
	ObjectsTransferred  int
	BytesTransferred    uint64
	BytesTotalState     uint64 // all discovered state (dirty-reduction input)
	ObjectsReallocated  int    // objects newly allocated in the new version
	ObjectsSkippedClean int    // clean startup objects left to reinitialization
	TypeTransformed     int    // objects whose layout changed across versions
	HandlerInvocations  int
	// Downtime copy-source split: of the bytes copied into the new
	// version, how many were served from a pre-copy shadow (captured
	// before quiescence, off the critical path) vs read from the live
	// address space during downtime. Without a checkpoint every copied
	// byte is live.
	BytesFromShadow uint64
	BytesLive       uint64
	// TypeCacheHits counts pair() layout/transformation derivations served
	// from the per-transfer memo instead of recomputed — every object of a
	// changed type beyond the first is a hit.
	TypeCacheHits int
	// Zero-copy page adoption (Options.Adopt): whole pages whose every
	// object is provably bit-identical across the update moved into the
	// new address space as frames instead of being copied. Adopted objects
	// still count in ObjectsTransferred/BytesTransferred; BytesAdopted is
	// the third leg of the copy-source split, so
	// BytesFromShadow + BytesLive + BytesAdopted == BytesTransferred.
	PagesAdopted int
	BytesAdopted uint64
	// Checksum digests the transferred source stream when
	// Options.VerifyShadows is set: per transferred object an FNV-64a
	// hash over identity and pre-remap source bytes, XOR-combined so the
	// digest is independent of copy order and worker scheduling. Two
	// transfers from the same quiesced state produce the same checksum
	// regardless of engine, shadows or parallelism — the bit-identity
	// witness the live-traffic harness records.
	Checksum uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.ObjectsDiscovered += other.ObjectsDiscovered
	s.ObjectsTransferred += other.ObjectsTransferred
	s.BytesTransferred += other.BytesTransferred
	s.BytesTotalState += other.BytesTotalState
	s.ObjectsReallocated += other.ObjectsReallocated
	s.ObjectsSkippedClean += other.ObjectsSkippedClean
	s.TypeTransformed += other.TypeTransformed
	s.HandlerInvocations += other.HandlerInvocations
	s.BytesFromShadow += other.BytesFromShadow
	s.BytesLive += other.BytesLive
	s.TypeCacheHits += other.TypeCacheHits
	s.PagesAdopted += other.PagesAdopted
	s.BytesAdopted += other.BytesAdopted
	s.Checksum ^= other.Checksum
}

// AdoptionFraction returns the fraction of transferred bytes that moved by
// zero-copy page adoption instead of object-by-object copy.
func (s *Stats) AdoptionFraction() float64 {
	if s.BytesTransferred == 0 {
		return 0
	}
	return float64(s.BytesAdopted) / float64(s.BytesTransferred)
}

// ShadowFraction returns the fraction of copied bytes the pre-copy
// checkpoint kept out of the downtime window.
func (s *Stats) ShadowFraction() float64 {
	total := s.BytesFromShadow + s.BytesLive
	if total == 0 {
		return 0
	}
	return float64(s.BytesFromShadow) / float64(total)
}

// DirtyReduction returns the fraction of state bytes the soft-dirty filter
// avoided transferring (the 68%-86% reduction of §8).
func (s *Stats) DirtyReduction() float64 {
	if s.BytesTotalState == 0 {
		return 0
	}
	return 1 - float64(s.BytesTransferred)/float64(s.BytesTotalState)
}

// Options configures a transfer.
type Options struct {
	Policy types.Policy
	// TransferLibs names libraries whose opaque state is transferred.
	TransferLibs map[string]bool
	// DisableDirtyFilter transfers every discovered object, ignoring
	// soft-dirty tracking (the D1 ablation).
	DisableDirtyFilter bool
	// Parallelism is the number of worker goroutines used inside one
	// process's transfer, for both graph discovery and object copying.
	// 0 means runtime.GOMAXPROCS(0); 1 runs the plain sequential
	// algorithm with no worker machinery; negative values are treated as
	// 1 (fail safe, not wide). Successful transfers are bit-identical at
	// every setting: discovery order is canonicalized before pairing, so
	// reallocation addresses, remapped contents and statistics do not
	// depend on worker scheduling. A conflicting transfer reports the
	// same (lowest-ordered) first conflict at every setting, but the
	// statistics of the aborted attempt may include more completed work
	// under parallelism; rollback discards the attempt either way.
	// With Parallelism > 1 user object handlers run concurrently — see
	// program.ObjHandler for the thread-safety contract.
	Parallelism int
	// Shadows, when set, resolves a process key to the pre-copy
	// checkpoint state the snapshotter accumulated for it while the old
	// version was still serving (nil for an unknown process). The
	// transfer unions the checkpoint's consumed pages into the dirty set
	// — keeping the transferred-object set identical to a checkpoint-free
	// run — and serves provably-current shadows instead of locked live
	// reads. Results stay bit-identical with or without a checkpoint.
	Shadows func(key program.ProcKey) ShadowReader
	// VerifyShadows turns the transfer into its own auditor: every object
	// served from a pre-copy shadow is cross-checked byte-for-byte
	// against the quiesced live memory it stands in for (a stale shadow
	// is a conflict, aborting the update before corrupt state commits),
	// and Stats.Checksum accumulates the order-independent FNV digest of
	// the full transferred source stream. One extra locked read per
	// shadow-served object; intended for harnesses and audits rather
	// than the downtime-critical path.
	VerifyShadows bool
	// Cancel, when non-nil, aborts an in-flight discovery once closed:
	// workers stop between objects and discovery returns ErrCanceled. The
	// pipelined update engine closes it when the concurrent RESTART phase
	// fails, so rollback never waits for a full old-side walk.
	Cancel <-chan struct{}
	// Recorder, when set, records per-process discover/copy spans on the
	// transfer track (each process as its own sub-track, so the parallel
	// old-side walk renders as overlapping lanes) and, under
	// VerifyShadows, the aggregate checksum instant.
	Recorder *obs.Recorder
	// Faults consults the fault-injection plane inside the copy path
	// (transfer error / stall / shadow corruption) and at the REMAP
	// pairing step. nil — the production configuration — never fires.
	// Stalls park until Cancel closes or the plane releases them, so the
	// watchdog's pipeline cancel drains an injected hang the same way it
	// drains a real one.
	Faults *faultinject.Plane
	// Adopt arms the zero-copy fast path: old-instance pages whose every
	// overlapping object is provably bit-identical across the update
	// (layout-identical same-address pair needing no pointer rewrite) are
	// moved into the new address space as whole frames — the simulated
	// analogue of the paper's VMA remap — instead of copied object by
	// object. Successful transfers stay bit-identical with adoption on or
	// off (the VerifyShadows checksum digests adopted sources too).
	Adopt bool
	// Ledger, when set with Adopt, records every donated page frame so
	// the update engine can return them on rollback or copy them back for
	// a canary window. Without a ledger adopted frames are unrecoverable;
	// the engine always supplies one.
	Ledger *mem.AdoptLedger
}

// ShadowReader is one process's view of a pre-copy checkpoint
// (implemented by checkpoint.ProcShadow).
type ShadowReader interface {
	// EverDirtyPages lists every page whose soft-dirty bit a pre-copy
	// epoch consumed, ascending.
	EverDirtyPages() []mem.Addr
	// Shadow returns the latest pre-copied contents of o, if captured.
	Shadow(o *mem.Object) ([]byte, bool)
}

// workers resolves Parallelism to an effective worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	if o.Parallelism < 0 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// shadowFor returns o's pre-copied contents when they are provably
// current: a shadow exists, it covers the object, and none of o's pages
// carry a soft-dirty bit at quiescence. Any write after the epoch that
// captured the shadow would have re-set a bit (the read-and-clear and the
// store both run under the address-space lock), so a clean page range
// guarantees the shadow is bit-identical to live memory. Read-only on pt;
// safe for concurrent workers.
func (pt *procTransfer) shadowFor(o *mem.Object) ([]byte, bool) {
	if pt.shadow == nil {
		return nil, false
	}
	buf, ok := pt.shadow.Shadow(o)
	if !ok || uint64(len(buf)) < o.Size {
		return nil, false
	}
	for pb := o.Addr &^ mem.Addr(mem.PageSize-1); pb < o.End(); pb += mem.PageSize {
		if pt.curDirty[pb] {
			return nil, false
		}
	}
	return buf, true
}

type pairEntry struct {
	oldObj *mem.Object
	newObj *mem.Object
	// transform is non-nil when old and new layouts differ.
	transform *types.Transformation
}

// typePair keys the transformation memo by type identity: each version's
// registry interns one *Type per named type, so pointer equality is exact
// — every object of the same changed type shares one cache entry.
type typePair struct{ old, new *types.Type }

// typeDelta is one memoized pair() derivation: the layout comparison and,
// when layouts differ and both types are known, the Diff outcome.
type typeDelta struct {
	equal bool
	tr    *types.Transformation
	err   error
}

// deltaIdentical is the shared result for pointer-identical pairs.
var deltaIdentical = &typeDelta{equal: true}

// delta returns the memoized layout/transformation derivation for one
// (oldType, newType) pair, counting reuses in Stats.TypeCacheHits.
func (pt *procTransfer) delta(oldT, newT *types.Type) *typeDelta {
	if oldT == newT {
		// Same interned type object (or both untyped): trivially equal;
		// not worth a cache entry or a hit count.
		return deltaIdentical
	}
	key := typePair{oldT, newT}
	if d, ok := pt.typeCache[key]; ok {
		pt.stats.TypeCacheHits++
		return d
	}
	d := &typeDelta{equal: types.LayoutEqual(oldT, newT)}
	if !d.equal && oldT != nil && newT != nil {
		d.tr, d.err = types.Diff(oldT, newT)
	}
	pt.typeCache[key] = d
	return d
}

// procTransfer transfers one old process's state into its new counterpart.
type procTransfer struct {
	oldProc *program.Proc
	newProc *program.Proc
	an      *Analysis
	opts    Options
	ann     *program.Annotations

	pairs     map[mem.Addr]*pairEntry     // keyed by old object start address
	dirty     map[mem.Addr]bool           // old objects overlapping soft-dirty pages
	bySiteSeq map[mem.PlanKey]*mem.Object // new-version heap objects

	// typeCache memoizes the per-(oldType, newType) layout comparison and
	// transformation pair() derives: a heap full of objects of one changed
	// type costs one Diff, not one per object. Only pair() (sequential)
	// touches it, so no lock.
	typeCache map[typePair]*typeDelta

	// Pre-copy checkpoint state (nil / empty without one): the shadow
	// reader, and the pages still soft-dirty at quiescence — a shadow is
	// current iff none of its object's pages appear here.
	shadow   ShadowReader
	curDirty map[mem.Addr]bool

	// adopted marks old objects whose pages moved by zero-copy frame
	// adoption; transferOne skips them. Written only by adoptPages
	// (sequential, before copyContents), read-only afterwards.
	adopted map[mem.Addr]bool

	stats Stats
}

// ProcDiscovery is the old-side half of one process's state transfer: the
// dirty-set computation and the reachability walk, which read only the
// quiesced old process. The pipelined update engine produces it while the
// new version is still starting up; Complete then pairs and copies into
// the new process the moment it exists.
type ProcDiscovery struct {
	pt        *procTransfer
	reachable []*mem.Object
}

// DiscoverProc runs the old-side half of a transfer: it snapshots the
// dirty-object set (unioning any pre-copy checkpoint's consumed pages)
// and walks the reachable object graph. The new version does not need to
// exist yet.
func DiscoverProc(oldProc *program.Proc, opts Options) (*ProcDiscovery, error) {
	pt := &procTransfer{
		oldProc:   oldProc,
		opts:      opts,
		pairs:     make(map[mem.Addr]*pairEntry),
		dirty:     make(map[mem.Addr]bool),
		typeCache: make(map[typePair]*typeDelta),
	}
	if opts.Shadows != nil {
		pt.shadow = opts.Shadows(oldProc.Key())
	}
	// The dirty-object set must be identical to a checkpoint-free run:
	// pages still soft-dirty at quiescence, plus every page whose bit a
	// pre-copy epoch read-and-cleared. Bits are only ever set by writes
	// and only cleared by epochs, so the union is exactly the
	// dirty-since-startup set.
	cur := oldProc.Space().SoftDirtyPages()
	dirtyPages := cur
	if pt.shadow != nil {
		pt.curDirty = make(map[mem.Addr]bool, len(cur))
		for _, pb := range cur {
			pt.curDirty[pb] = true
		}
		dirtyPages = append(append([]mem.Addr(nil), cur...), pt.shadow.EverDirtyPages()...)
	}
	for _, o := range oldProc.Index().OnPages(dirtyPages) {
		pt.dirty[o.Addr] = true
	}
	reachable, err := pt.discover()
	if err != nil {
		return nil, err
	}
	return &ProcDiscovery{pt: pt, reachable: reachable}, nil
}

// Complete finishes the transfer against the new process: pair every
// reachable object with its counterpart and copy the contents. The
// analysis must come from AnalyzeProc on the old process with the same
// policy the discovery ran under.
func (d *ProcDiscovery) Complete(newProc *program.Proc, an *Analysis) (Stats, error) {
	pt := d.pt
	pt.newProc = newProc
	pt.an = an
	pt.ann = newProc.Instance().Version().Annotations
	pt.bySiteSeq = make(map[mem.PlanKey]*mem.Object)
	for _, o := range newProc.Index().All() {
		if o.Kind == mem.ObjHeap && o.Site != 0 {
			pt.bySiteSeq[mem.PlanKey{Site: o.Site, Seq: o.Seq}] = o
		}
	}
	if err := pt.pair(d.reachable); err != nil {
		return pt.stats, err
	}
	if err := pt.adoptPages(d.reachable); err != nil {
		return pt.stats, err
	}
	if err := pt.copyContents(d.reachable); err != nil {
		return pt.stats, err
	}
	return pt.stats, nil
}

// TransferProc transfers the state of oldProc into newProc. The analysis
// must come from AnalyzeProc on oldProc with the same policy. It is the
// unpipelined composition of DiscoverProc and Complete.
func TransferProc(oldProc, newProc *program.Proc, an *Analysis, opts Options) (Stats, error) {
	d, err := DiscoverProc(oldProc, opts)
	if err != nil {
		return Stats{}, err
	}
	return d.Complete(newProc, an)
}

// discover walks the old object graph from the roots (static, stack and
// opted-in lib objects), following precise pointer slots and likely
// pointers, and returns the reachable objects sorted by address. The order
// is canonical — independent of traversal strategy and worker scheduling —
// because pair() reallocates objects in this order, and reallocation
// addresses must not depend on Parallelism.
func (pt *procTransfer) discover() ([]*mem.Object, error) {
	var roots []*mem.Object
	for _, o := range pt.oldProc.Index().All() {
		switch o.Kind {
		case mem.ObjStatic, mem.ObjStack:
			roots = append(roots, o)
		case mem.ObjLib:
			if pt.opts.TransferLibs[o.Name] {
				roots = append(roots, o)
			}
		}
	}
	var out []*mem.Object
	var err error
	if w := pt.opts.workers(); w > 1 {
		out, err = pt.discoverParallel(roots, w)
	} else {
		out, err = pt.discoverSeq(roots)
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	for _, o := range out {
		pt.stats.ObjectsDiscovered++
		pt.stats.BytesTotalState += o.Size
	}
	return out, nil
}

// scanObject reads every traced pointer of o (precise slots, then the
// conservative scan of its opaque ranges) and calls visit for each live
// target, filtering non-transferred library objects. The object is read
// with one locked ReadAt into the caller's scratch buffer (reused across
// objects, grown on demand) and scanned locally, so concurrent workers
// contend on the address-space lock once per object, not once per word,
// and discovery does not allocate per object. It is read-only on pt and
// safe for concurrent use with a scratch buffer per worker.
func (pt *procTransfer) scanObject(o *mem.Object, scratch *[]byte, visit func(*mem.Object)) error {
	opaques, ptrs := opaqueRangesOf(o, pt.opts.Policy)
	if len(opaques) == 0 && len(ptrs) == 0 {
		// Pointer-free layout (scalars only): nothing to trace, skip the
		// read entirely.
		return nil
	}
	ix := pt.oldProc.Index()
	if uint64(cap(*scratch)) < o.Size {
		*scratch = make([]byte, o.Size)
	}
	buf := (*scratch)[:o.Size]
	if sb, ok := pt.shadowFor(o); ok {
		// Current shadow: identical bytes without the locked live read.
		copy(buf, sb[:o.Size])
	} else if err := pt.oldProc.Space().ReadAt(o.Addr, buf); err != nil {
		return err
	}
	for _, slot := range ptrs {
		if slot.Func || slot.Offset+8 > o.Size {
			continue
		}
		word := binary.LittleEndian.Uint64(buf[slot.Offset:])
		if word == 0 {
			continue
		}
		if target, ok := ix.Containing(mem.Addr(word)); ok {
			if target.Kind != mem.ObjLib || pt.opts.TransferLibs[target.Name] {
				visit(target)
			}
		}
	}
	for _, r := range opaques {
		end := r.Offset + r.Size
		if end > o.Size {
			end = o.Size
		}
		for off := (r.Offset + 7) &^ 7; off+8 <= end; off += 8 {
			word := binary.LittleEndian.Uint64(buf[off:])
			if target, ok := likelyPointer(ix, word); ok {
				if target.Kind != mem.ObjLib || pt.opts.TransferLibs[target.Name] {
					visit(target)
				}
			}
		}
	}
	return nil
}

// canceled reports whether Options.Cancel has fired.
func (pt *procTransfer) canceled() bool {
	if pt.opts.Cancel == nil {
		return false
	}
	select {
	case <-pt.opts.Cancel:
		return true
	default:
		return false
	}
}

// discoverSeq is the single-worker BFS. Like the parallel traversal it
// completes the walk even past scan failures (a failed object contributes
// no successors either way) and reports the lowest-address failure, so a
// failing discovery names the same object at every Parallelism setting.
func (pt *procTransfer) discoverSeq(roots []*mem.Object) ([]*mem.Object, error) {
	seen := make(map[mem.Addr]bool)
	var queue []*mem.Object
	push := func(o *mem.Object) {
		if !seen[o.Addr] {
			seen[o.Addr] = true
			queue = append(queue, o)
		}
	}
	for _, o := range roots {
		push(o)
	}
	var out []*mem.Object
	var scratch []byte
	var fail scanFailure
	for len(queue) > 0 {
		if pt.canceled() {
			return nil, ErrCanceled
		}
		o := queue[0]
		queue = queue[1:]
		out = append(out, o)
		if err := pt.scanObject(o, &scratch, push); err != nil {
			fail = mergeFailure(fail, o.Addr, err)
		}
	}
	if fail.err != nil {
		return nil, fail.err
	}
	return out, nil
}

// newTypeFor maps an old object's type into the new version's registry:
// named types resolve by name (picking up update-induced layout changes);
// anonymous types carry over structurally.
func (pt *procTransfer) newTypeFor(old *types.Type) *types.Type {
	if old == nil {
		return nil
	}
	if old.Name != "" {
		if nt, ok := pt.newProc.Instance().Version().Types.Lookup(old.Name); ok {
			return nt
		}
		// Type deleted by the update: fall back to the old layout; the
		// object keeps its shape (and a conflict surfaces only if code
		// actually changed it).
	}
	return old
}

// pair finds or creates the new-version counterpart of every reachable old
// object, matching by the strategies of §6: symbol names for statics and
// stack variables, (site, seq) for startup-reallocated heap objects,
// allocation-site reallocation for the rest, same-address reservations for
// immutable objects.
func (pt *procTransfer) pair(reachable []*mem.Object) error {
	for _, o := range reachable {
		e := &pairEntry{oldObj: o}
		pt.pairs[o.Addr] = e
		switch o.Kind {
		case mem.ObjStatic, mem.ObjLib:
			if n, ok := pt.newProc.Global(o.Name); ok {
				e.newObj = n
			} else if n, ok := pt.newProc.Index().At(o.Addr); ok && n.Name == o.Name {
				// Lib objects: pre-linked at identical addresses.
				e.newObj = n
			}
			// A deleted global has no counterpart: dropped, unless some
			// transferred pointer still needs it (checked during remap).
		case mem.ObjStack:
			e.newObj = pt.findStackVar(o.Name)
		case mem.ObjHeap:
			imm := pt.an.IsImmutable(o.Addr)
			if o.Startup {
				if n, ok := pt.bySiteSeq[mem.PlanKey{Site: o.Site, Seq: o.Seq}]; ok {
					e.newObj = n
					if imm && n.Addr != o.Addr {
						return conflictf("immutable startup object %s reallocated at %#x", o, n.Addr)
					}
					break
				}
				// The new startup did not recreate it (changed startup
				// code): reallocate at transfer time like a dirty object.
			}
			var n *mem.Object
			var err error
			nt := pt.newTypeFor(o.Type)
			if imm {
				// Immutable: same address. The engine pre-reserved the
				// range before startup (possibly as part of a coalesced
				// superobject); if it did not (first contact), reserve it
				// now.
				if existing, ok := pt.newProc.Index().At(o.Addr); ok {
					n = existing
				} else if super, ok := pt.newProc.Index().Containing(o.Addr); ok &&
					super.Type == nil && super.End() >= o.End() {
					// A synthetic view into the reserved superobject:
					// correct address and size for copying and remapping,
					// not separately indexed.
					n = &mem.Object{Addr: o.Addr, Size: o.Size, Type: nt,
						Site: o.Site, Seq: o.Seq, Kind: mem.ObjHeap}
				} else {
					n, err = pt.newProc.Heap().AllocAt(o.Addr, o.Size, nt, o.Site)
					if err != nil {
						return conflictf("immutable object %s cannot be re-reserved: %v", o, err)
					}
				}
			} else {
				size := o.Size
				if nt != nil {
					// The new version's layout decides the size: a grown
					// type needs room for its added fields (Figure 2).
					size = nt.Size
				}
				n, err = pt.newProc.Heap().Alloc(size, nt, o.Site)
				if err != nil {
					return fmt.Errorf("trace: reallocate %s: %w", o, err)
				}
			}
			pt.stats.ObjectsReallocated++
			e.newObj = n
		}
		if e.newObj == nil {
			continue
		}
		// Derive the transformation if layouts differ. A user object
		// handler (MCR_ADD_OBJ_HANDLER) overrides the nonupdatability
		// invariant: the annotation asserts knowledge of the hidden
		// pointers the conservative analysis flagged (§3, Listing 1).
		oldT, newT := o.Type, e.newObj.Type
		if d := pt.delta(oldT, newT); !d.equal {
			_, hasHandler := pt.ann.ObjHandler(o.Name)
			if pt.an.Nonupdatable[o.Addr] && !hasHandler {
				return conflictf("nonupdatable object %s changed type %s -> %s", o, oldT, newT)
			}
			if oldT == nil || newT == nil {
				return conflictf("object %s lost/gained type information (%s -> %s)", o, oldT, newT)
			}
			if d.err != nil && !hasHandler {
				return conflictf("object %s: %v", o, d.err)
			}
			e.transform = d.tr
			pt.stats.TypeTransformed++
		}
	}
	return nil
}

func (pt *procTransfer) findStackVar(name string) *mem.Object {
	for _, o := range pt.newProc.Index().All() {
		if o.Kind == mem.ObjStack && o.Name == name {
			return o
		}
	}
	return nil
}

// RemapPtr translates an old pointer value to the new version.
func (pt *procTransfer) RemapPtr(old uint64) (uint64, bool) {
	target, ok := pt.oldProc.Index().Containing(mem.Addr(old))
	if !ok {
		return 0, false
	}
	e := pt.pairs[target.Addr]
	if e == nil || e.newObj == nil {
		return 0, false
	}
	off := uint64(mem.Addr(old) - target.Addr)
	if off == 0 {
		return uint64(e.newObj.Addr), true
	}
	if e.transform == nil {
		return uint64(e.newObj.Addr) + off, true
	}
	// Interior pointer into a transformed object: remap through the field
	// copy covering the offset.
	for _, c := range e.transform.Copies {
		if off >= c.SrcOffset && off < c.SrcOffset+c.SrcSize {
			return uint64(e.newObj.Addr) + c.DstOffset + (off - c.SrcOffset), true
		}
	}
	return 0, false
}

// OldProc implements program.TransferContext.
func (pt *procTransfer) OldProc() *program.Proc { return pt.oldProc }

// NewProc implements program.TransferContext.
func (pt *procTransfer) NewProc() *program.Proc { return pt.newProc }

// DefaultTransfer implements program.TransferContext for handlers that
// post-process the automatic transformation.
func (pt *procTransfer) DefaultTransfer(oldObj, newObj *mem.Object) error {
	e := pt.pairs[oldObj.Addr]
	if e == nil {
		e = &pairEntry{oldObj: oldObj, newObj: newObj}
	}
	var scratch []byte
	var st Stats // handler-path bytes are accounted by the caller
	return pt.transferObject(e, &scratch, &st)
}

var _ program.TransferContext = (*procTransfer)(nil)

// copyContents performs the actual state copy: dirty objects (and all
// post-startup reallocations) are transformed and remapped into the new
// version; clean startup objects are left to mutable reinitialization.
// With Parallelism > 1 the object pairs are processed by a worker pool:
// every pair writes only into its own (disjoint) new-object range, stats
// accumulate into per-worker shards merged at the end, and on conflict the
// error of the lowest-index object is returned — the same conflict the
// sequential pass reports first, keeping rollback reproducible.
func (pt *procTransfer) copyContents(reachable []*mem.Object) error {
	if w := pt.opts.workers(); w > 1 && len(reachable) > 1 {
		return pt.copyContentsParallel(reachable, w)
	}
	var scratch []byte
	for _, o := range reachable {
		if err := pt.transferOne(o, &pt.stats, &scratch); err != nil {
			return err
		}
	}
	return nil
}

// transferOne copies one reachable object into its new-version pair,
// accumulating into st and staging copies in the caller's reused scratch
// buffer. It writes only within the paired new object's range, so
// distinct objects can transfer concurrently (one scratch per worker).
func (pt *procTransfer) transferOne(o *mem.Object, st *Stats, scratch *[]byte) error {
	e := pt.pairs[o.Addr]
	if e == nil || e.newObj == nil {
		return nil
	}
	if pt.adopted[o.Addr] {
		// Moved wholesale by page adoption; accounted there.
		return nil
	}
	needsCopy := pt.dirty[o.Addr] || !o.Startup || pt.opts.DisableDirtyFilter
	if o.Kind == mem.ObjHeap && o.Startup && pt.bySiteSeq[mem.PlanKey{Site: o.Site, Seq: o.Seq}] == nil {
		// Startup object the new version did not recreate: must copy.
		needsCopy = true
	}
	if !needsCopy {
		st.ObjectsSkippedClean++
		return nil
	}
	// Injected copy faults: a worker failing loudly mid-object, or parking
	// until the pipeline cancel / watchdog releases it.
	if err := pt.opts.Faults.Check(faultinject.PointTransferError); err != nil {
		return err
	}
	if err := pt.opts.Faults.Stall(faultinject.PointTransferStall, pt.opts.Cancel); err != nil {
		return err
	}
	if h, ok := pt.ann.ObjHandler(o.Name); ok {
		st.HandlerInvocations++
		if pt.opts.VerifyShadows {
			// Handlers read the old side live; digest the same source.
			if err := pt.verifySource(o, o.Size, nil, st); err != nil {
				return err
			}
		}
		if err := h(pt, o, e.newObj); err != nil {
			return conflictf("handler for %s: %v", o, err)
		}
		st.ObjectsTransferred++
		st.BytesTransferred += o.Size
		// Handler behavior is opaque (it may or may not route through
		// DefaultTransfer), so count its bytes as live conservatively:
		// the shadow/live split always sums to BytesTransferred and
		// never overstates what the checkpoint kept out of downtime.
		st.BytesLive += o.Size
		return nil
	}
	if err := pt.transferObject(e, scratch, st); err != nil {
		return err
	}
	st.ObjectsTransferred++
	st.BytesTransferred += o.Size
	return nil
}

// transferObject applies the automatic transformation for one object pair:
// verbatim copy (plus precise pointer remap) for layout-identical pairs,
// field-mapped transformation otherwise. For the layout-identical case the
// copy is staged in the caller's reused scratch buffer and the pointers
// are remapped there, so the new address space is written with a single
// locked WriteAt per object — the short serial section concurrent copy
// workers contend on — and the hot path does not allocate per object.
// When a current pre-copy shadow covers the object, the stage is filled
// from the shadow instead of the locked live read; st records the
// shadow-vs-live byte split either way.
func (pt *procTransfer) transferObject(e *pairEntry, scratch *[]byte, st *Stats) error {
	oldAS, newAS := pt.oldProc.Space(), pt.newProc.Space()
	o, n := e.oldObj, e.newObj
	if e.transform == nil || e.transform.Identical {
		size := o.Size
		if n.Size < size {
			size = n.Size
		}
		if uint64(cap(*scratch)) < size {
			*scratch = make([]byte, size)
		}
		buf := (*scratch)[:size]
		var shadowSrc []byte
		if sb, ok := pt.shadowFor(o); ok {
			// Injected silent corruption: one byte of the shadow itself
			// flips, so the staged copy and the shadow agree with each
			// other — only the VerifyShadows cross-check against quiesced
			// live memory can catch the divergence.
			pt.opts.Faults.Corrupt(faultinject.PointTransferCorrupt, sb[:size])
			copy(buf, sb[:size])
			st.BytesFromShadow += size
			shadowSrc = sb
		} else {
			if err := oldAS.ReadAt(o.Addr, buf); err != nil {
				return err
			}
			st.BytesLive += size
		}
		if pt.opts.VerifyShadows {
			if err := pt.verifySource(o, size, shadowSrc, st); err != nil {
				return err
			}
		}
		pt.remapInBuf(buf, n.Type)
		return newAS.WriteAt(n.Addr, buf)
	}
	// Layout changed: apply the field map. When a provably-current
	// pre-copy shadow covers the object, the scattered field reads are
	// served from it instead of the locked live address space — the bytes
	// are identical either way (shadow currency implies no write since
	// capture).
	shadow, fromShadow := pt.shadowFor(o)
	if fromShadow {
		pt.opts.Faults.Corrupt(faultinject.PointTransferCorrupt, shadow[:o.Size])
	}
	if pt.opts.VerifyShadows {
		if err := pt.verifySource(o, o.Size, shadow, st); err != nil {
			return err
		}
	}
	tr := e.transform
	for _, c := range tr.Copies {
		if err := pt.copyField(o, n, c, shadow); err != nil {
			return err
		}
	}
	// Attributed at object granularity, like BytesTransferred, so the
	// shadow/live split always sums to the transferred total even when
	// the field map covers only part of the object.
	if fromShadow {
		st.BytesFromShadow += o.Size
	} else {
		st.BytesLive += o.Size
	}
	return nil
}

// verifySource is the VerifyShadows audit for one object: read the first
// n quiesced live bytes, cross-check the shadow served in their place
// (nil when the copy read live memory directly), and fold the source
// digest into st. The digest definition lives here and in sourceDigest
// only — the cross-engine bit-identity test depends on every copy path
// agreeing on it.
func (pt *procTransfer) verifySource(o *mem.Object, n uint64, shadow []byte, st *Stats) error {
	src := make([]byte, n)
	if err := pt.oldProc.Space().ReadAt(o.Addr, src); err != nil {
		return err
	}
	if shadow != nil && !bytes.Equal(src, shadow[:n]) {
		return conflictf("shadow for %s diverges from quiesced memory", o)
	}
	st.Checksum ^= pt.sourceDigest(o, src)
	return nil
}

// sourceDigest hashes one transferred object's identity and pre-remap
// source bytes (FNV-64a). Per-object digests are XOR-combined into
// Stats.Checksum, making the stream digest order-independent. The
// process key is part of the identity: forked processes hold identical
// objects at identical addresses, and two equal digests would XOR to
// zero — cancelling exactly the fork-heavy copies the audit exists to
// cover.
func (pt *procTransfer) sourceDigest(o *mem.Object, data []byte) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v:%x:%x:%d:%s;", pt.oldProc.Key(), o.Addr, o.Size, o.Kind, o.Name)
	h.Write(data)
	return h.Sum64()
}

// remapInBuf rewrites every precise pointer slot of type t inside the
// staged copy buf, translating old-version values. Slots past the staged
// size (a shrunk counterpart) are left to the new version's own state.
func (pt *procTransfer) remapInBuf(buf []byte, t *types.Type) {
	if t == nil {
		return
	}
	l := types.LayoutOf(t, pt.opts.Policy)
	for _, slot := range l.Ptrs {
		if slot.Func || slot.Offset+8 > uint64(len(buf)) {
			continue
		}
		v := binary.LittleEndian.Uint64(buf[slot.Offset:])
		if v == 0 {
			continue
		}
		if nv, ok := pt.RemapPtr(v); ok && nv != v {
			binary.LittleEndian.PutUint64(buf[slot.Offset:], nv)
		}
	}
}

// copyField applies one FieldCopy, handling integer resizing, pointer
// remapping and nested aggregates. When shadow (the object's current
// pre-copy capture, starting at the object base) is non-nil, source bytes
// come from it instead of a locked live read.
func (pt *procTransfer) copyField(o, n *mem.Object, c types.FieldCopy, shadow []byte) error {
	newAS := pt.newProc.Space()
	dstAddr := n.Addr + mem.Addr(c.DstOffset)
	readSrc := func() ([]byte, error) {
		if shadow != nil && c.SrcOffset+c.SrcSize <= uint64(len(shadow)) {
			return shadow[c.SrcOffset : c.SrcOffset+c.SrcSize], nil
		}
		buf := make([]byte, c.SrcSize)
		if err := pt.oldProc.Space().ReadAt(o.Addr+mem.Addr(c.SrcOffset), buf); err != nil {
			return nil, err
		}
		return buf, nil
	}
	switch {
	case c.SrcSize == c.DstSize:
		buf, err := readSrc()
		if err != nil {
			return err
		}
		if err := newAS.WriteAt(dstAddr, buf); err != nil {
			return err
		}
		if c.Ptr {
			return pt.remapWord(dstAddr)
		}
		if c.Elem != nil {
			return pt.remapSlots(n, c.Elem, c.DstOffset, c.SrcOffset-c.DstOffset, o)
		}
		return nil
	default:
		// Integer resize with optional sign extension.
		buf, err := readSrc()
		if err != nil {
			return err
		}
		var v uint64
		for i := len(buf) - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
		if c.Signed && len(buf) > 0 && buf[len(buf)-1]&0x80 != 0 {
			for i := c.SrcSize; i < 8; i++ {
				v |= 0xff << (8 * i)
			}
		}
		out := make([]byte, c.DstSize)
		for i := range out {
			out[i] = byte(v >> (8 * uint(i)))
		}
		return newAS.WriteAt(dstAddr, out)
	}
}

// remapSlots rewrites every precise pointer slot of type t (placed at
// dstBase inside the new object) by translating the old-version values.
// srcBias converts a new-object offset back to the old-object offset the
// value was copied from.
func (pt *procTransfer) remapSlots(n *mem.Object, t *types.Type, dstBase, srcBias uint64, _ *mem.Object) error {
	if t == nil {
		return nil
	}
	l := types.LayoutOf(t, pt.opts.Policy)
	for _, slot := range l.Ptrs {
		if slot.Func {
			continue
		}
		addr := n.Addr + mem.Addr(dstBase+slot.Offset)
		if uint64(addr)+8 > uint64(n.End()) {
			continue
		}
		if err := pt.remapWord(addr); err != nil {
			return err
		}
	}
	_ = srcBias
	return nil
}

// remapWord rewrites one pointer cell in the new address space, leaving
// values that do not resolve to transferred objects untouched.
func (pt *procTransfer) remapWord(addr mem.Addr) error {
	newAS := pt.newProc.Space()
	v, err := newAS.ReadWord(addr)
	if err != nil {
		return err
	}
	if v == 0 {
		return nil
	}
	nv, ok := pt.RemapPtr(v)
	if !ok {
		return nil
	}
	if nv == v {
		return nil
	}
	return newAS.WriteWord(addr, nv)
}

// resolveParallelism fixes the per-process worker budget: an explicit
// opts.Parallelism applies per process, while the default (0) splits the
// GOMAXPROCS budget across the concurrent per-process transfers so a
// many-process instance does not oversubscribe the CPU. Discovery and
// completion must resolve identically, or the two halves of a pipelined
// transfer would disagree with the unpipelined engine.
func resolveParallelism(opts Options, procs int) Options {
	if opts.Parallelism == 0 && procs > 1 {
		if w := runtime.GOMAXPROCS(0) / procs; w > 0 {
			opts.Parallelism = w
		} else {
			opts.Parallelism = 1
		}
	}
	return opts
}

// InstanceDiscovery is the old-side half of a whole-instance transfer:
// every process's dirty set and reachable graph, computed against the
// quiesced old version only. The pipelined update engine runs it
// concurrently with the new version's RESTART phase.
type InstanceDiscovery struct {
	procs []*program.Proc // old processes, in Procs() order
	discs []*ProcDiscovery
	opts  Options
}

// DiscoverInstance runs the old-side discovery of every process in
// parallel (§6: "fully parallelizing the state transfer operations in a
// multiprocess context"). On any failure the first error in process
// order is returned, so a conflicting discovery is reproducible.
func DiscoverInstance(oldInst *program.Instance, opts Options) (*InstanceDiscovery, error) {
	oldProcs := oldInst.Procs()
	opts = resolveParallelism(opts, len(oldProcs))
	discs := make([]*ProcDiscovery, len(oldProcs))
	errs := make([]error, len(oldProcs))
	var wg sync.WaitGroup
	for i, op := range oldProcs {
		wg.Add(1)
		go func(i int, op *program.Proc) {
			defer wg.Done()
			if opts.Recorder.On() {
				// Key string built only when recording — the disabled
				// path must stay allocation-free.
				defer opts.Recorder.SpanProc(obs.TrackTransfer, obs.PhaseDiscover, op.Key().String()).End()
			}
			discs[i], errs[i] = DiscoverProc(op, opts)
		}(i, op)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &InstanceDiscovery{procs: oldProcs, discs: discs, opts: opts}, nil
}

// Complete pairs and copies every discovered process into its new-version
// counterpart, matched by creation key, and returns aggregated statistics.
// Every pairing (and analysis) is resolved before any transfer starts: a
// missing counterpart must not leave already-started transfers mutating
// the new instance behind the caller's back while it rolls back.
func (id *InstanceDiscovery) Complete(newInst *program.Instance, analyses map[program.ProcKey]*Analysis) (Stats, error) {
	// Injected REMAP failure: pairing dies before any transfer starts —
	// the same all-or-nothing point a missing counterpart aborts at.
	if err := id.opts.Faults.Check(faultinject.PointRemapFail); err != nil {
		return Stats{}, err
	}
	newProcs := make([]*program.Proc, len(id.procs))
	procAnalyses := make([]*Analysis, len(id.procs))
	for i, op := range id.procs {
		np, ok := newInst.ProcByKey(op.Key())
		if !ok {
			return Stats{}, conflictf("no new-version process for %s", op.Key())
		}
		an := analyses[op.Key()]
		if an == nil {
			return Stats{}, fmt.Errorf("trace: missing analysis for %s", op.Key())
		}
		newProcs[i], procAnalyses[i] = np, an
	}
	type result struct {
		stats Stats
		err   error
	}
	results := make([]result, len(id.procs))
	var wg sync.WaitGroup
	for i := range id.procs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := id.discs[i].pt.opts.Recorder
			if rec.On() {
				defer rec.SpanProc(obs.TrackTransfer, obs.PhaseCopy, id.procs[i].Key().String()).End()
			}
			s, err := id.discs[i].Complete(newProcs[i], procAnalyses[i])
			results[i] = result{stats: s, err: err}
		}(i)
	}
	wg.Wait()
	var total Stats
	for _, r := range results {
		if r.err != nil {
			return total, r.err
		}
		total.Add(r.stats)
	}
	if len(id.discs) > 0 {
		if rec := id.discs[0].pt.opts.Recorder; rec != nil && total.Checksum != 0 {
			rec.Instant(obs.TrackTransfer, obs.PhaseChecksum, "fnv64a", int64(total.Checksum))
		}
	}
	return total, nil
}

// TransferInstance transfers every old process into its new counterpart:
// the unpipelined composition of DiscoverInstance and Complete, used by
// the sequential update engine and anywhere both instances already exist.
func TransferInstance(oldInst, newInst *program.Instance, analyses map[program.ProcKey]*Analysis, opts Options) (Stats, error) {
	id, err := DiscoverInstance(oldInst, opts)
	if err != nil {
		return Stats{}, err
	}
	return id.Complete(newInst, analyses)
}
