package trace

import (
	"testing"
	"time"
)

// TestStateDigest pins the digest's two contractual properties: it is
// stable across reads of an untouched instance (taking it twice — or
// letting the instance sit quiesced in between, the canary-window case —
// changes nothing), and any byte of drift in any object changes it.
func TestStateDigest(t *testing.T) {
	inst := runV1(t, 3)
	defer inst.Terminate()

	d1, err := StateDigest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == 0 {
		t.Fatal("zero digest")
	}
	d2, err := StateDigest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d1 {
		t.Fatalf("digest not stable: %#x vs %#x", d1, d2)
	}

	// The adoptable-window scenario in miniature: resume, let the server
	// sit idle, re-quiesce — no traffic means no drift.
	inst.Resume()
	time.Sleep(2 * time.Millisecond)
	if _, err := inst.Quiesce(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	d3, err := StateDigest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatalf("idle window drifted state: %#x vs %#x", d1, d3)
	}

	// One-byte mutation must change the digest.
	root := inst.Root()
	objs := root.Index().All()
	if len(objs) == 0 {
		t.Fatal("no objects")
	}
	o := objs[len(objs)/2]
	buf := make([]byte, 1)
	if err := root.Space().ReadAt(o.Addr, buf); err != nil {
		t.Fatal(err)
	}
	if err := root.Space().WriteAt(o.Addr, []byte{buf[0] ^ 0xff}); err != nil {
		t.Fatal(err)
	}
	d4, err := StateDigest(inst)
	if err != nil {
		t.Fatal(err)
	}
	if d4 == d1 {
		t.Fatal("one-byte mutation left the digest unchanged")
	}
}
