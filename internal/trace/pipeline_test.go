package trace

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/types"
)

// TestDecoupledDiscoveryMatchesTransfer asserts the pipelined split
// (DiscoverInstance while the new version "boots", Complete afterwards)
// is bit-identical to the one-shot TransferInstance, at sequential and
// parallel settings — the engine-level guarantee that pipelining cannot
// change what a rollback would have to undo.
func TestDecoupledDiscoveryMatchesTransfer(t *testing.T) {
	shape := randShape(23, 3)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()

	baseStats, baseInst := transferSynth(t, v1, shape, true, 1, true)
	defer baseInst.Terminate()

	for _, par := range []int{1, 8} {
		analyses, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Policy:             types.DefaultPolicy(),
			DisableDirtyFilter: true,
			Parallelism:        par,
		}
		// Discovery first — before the new instance exists, exactly like
		// the pipelined engine overlapping it with RESTART.
		id, err := DiscoverInstance(v1, opts)
		if err != nil {
			t.Fatalf("discover (par=%d): %v", par, err)
		}
		v2 := startSynthV2(t, shape, true, analyses)
		stats, err := id.Complete(v2, analyses)
		if err != nil {
			v2.Terminate()
			t.Fatalf("complete (par=%d): %v", par, err)
		}
		if !reflect.DeepEqual(stats, baseStats) {
			t.Fatalf("par=%d stats diverged:\nsplit %+v\nbase  %+v", par, stats, baseStats)
		}
		compareInstances(t, baseInst, v2)
		v2.Terminate()
	}
}

// TestDiscoveryCancel pins the cancellation contract: a fired Cancel
// channel aborts the walk with ErrCanceled at every Parallelism setting,
// without deadlocking the worker pool.
func TestDiscoveryCancel(t *testing.T) {
	shape := randShape(5, 2)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	canceled := make(chan struct{})
	close(canceled)
	for _, par := range []int{1, 8} {
		_, err := DiscoverInstance(v1, Options{
			Policy:      types.DefaultPolicy(),
			Parallelism: par,
			Cancel:      canceled,
		})
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("par=%d: err = %v, want ErrCanceled", par, err)
		}
	}
}

// TestSpeculateResolve pins the speculative-analysis validation: with no
// writes between capture and resolve every process's analysis is reused
// and equals a fresh post-quiesce run; a write to one process invalidates
// exactly that process.
func TestSpeculateResolve(t *testing.T) {
	shape := randShape(91, 3)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()

	spec := Speculate(v1, types.DefaultPolicy(), nil)
	analyses, reused, err := spec.Resolve(v1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(v1.Procs()); reused != want {
		t.Errorf("reused = %d, want %d (idle instance)", reused, want)
	}
	fresh, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(analyses, fresh) {
		t.Error("speculative analyses differ from a fresh run over unchanged state")
	}

	// Invalidate only the root: write one (semantically idempotent) word.
	spec2 := Speculate(v1, types.DefaultPolicy(), nil)
	spec2.Wait()
	root := v1.Root()
	anchor := root.MustGlobal("anchor")
	w, err := root.Space().ReadWord(anchor.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Space().WriteWord(anchor.Addr, w); err != nil {
		t.Fatal(err)
	}
	analyses2, reused2, err := spec2.Resolve(v1)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(v1.Procs()) - 1; reused2 != want {
		t.Errorf("reused after root write = %d, want %d (only root invalidated)", reused2, want)
	}
	if !reflect.DeepEqual(analyses2, fresh) {
		t.Error("re-resolved analyses differ from the fresh run")
	}
}

// TestTypeCacheHits pins the pair() transformation memo: a heap full of
// objects of one changed named type derives the Diff once and serves the
// rest from the cache.
func TestTypeCacheHits(t *testing.T) {
	shape := randShape(7, 1)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	stats, v2 := transferSynth(t, v1, shape, true, 1, true)
	defer v2.Terminate()
	if stats.TypeTransformed < 10 {
		t.Fatalf("degenerate scenario: only %d transformed objects", stats.TypeTransformed)
	}
	// One named type changed (node_t), so at minimum every transformed
	// object beyond the first is a cache hit (equal-layout named pairs
	// hit the memo too, so the count can be higher).
	if want := stats.TypeTransformed - 1; stats.TypeCacheHits < want {
		t.Errorf("TypeCacheHits = %d, want >= %d (%d transformed)",
			stats.TypeCacheHits, want, stats.TypeTransformed)
	}
}

// fakeShadow is a test ShadowReader: a full capture of the old process
// taken while nothing was dirty, so every shadow is trivially current.
type fakeShadow struct {
	bufs map[*mem.Object][]byte
}

func (f *fakeShadow) EverDirtyPages() []mem.Addr { return nil }
func (f *fakeShadow) Shadow(o *mem.Object) ([]byte, bool) {
	b, ok := f.bufs[o]
	return b, ok
}

// TestTransformedObjectsServeFromShadow closes the ROADMAP leftover: the
// field-mapped (layout-changed) copy path must read from a provably
// current shadow instead of live memory, with bit-identical output.
func TestTransformedObjectsServeFromShadow(t *testing.T) {
	shape := randShape(31, 1)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	root := v1.Root()

	fs := &fakeShadow{bufs: make(map[*mem.Object][]byte)}
	for _, o := range root.Index().All() {
		buf := make([]byte, o.Size)
		if err := root.Space().ReadAt(o.Addr, buf); err != nil {
			t.Fatal(err)
		}
		fs.bufs[o] = buf
	}

	run := func(withShadow bool) (Stats, *program.Instance) {
		analyses, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
		if err != nil {
			t.Fatal(err)
		}
		v2 := startSynthV2(t, shape, true, analyses)
		opts := Options{
			Policy:             types.DefaultPolicy(),
			DisableDirtyFilter: true,
			Parallelism:        1,
		}
		if withShadow {
			opts.Shadows = func(key program.ProcKey) ShadowReader {
				if key == root.Key() {
					return fs
				}
				return nil
			}
		}
		stats, err := TransferInstance(v1, v2, analyses, opts)
		if err != nil {
			v2.Terminate()
			t.Fatalf("transfer (shadow=%v): %v", withShadow, err)
		}
		return stats, v2
	}

	live, liveInst := run(false)
	defer liveInst.Terminate()
	shadowed, shadowInst := run(true)
	defer shadowInst.Terminate()

	if shadowed.TypeTransformed == 0 {
		t.Fatal("scenario exercised no transformed objects")
	}
	if shadowed.BytesLive != 0 {
		t.Errorf("BytesLive = %d with a full current shadow, want 0 (transformed path included)",
			shadowed.BytesLive)
	}
	if shadowed.BytesFromShadow != live.BytesLive || shadowed.BytesTransferred != live.BytesTransferred {
		t.Errorf("byte accounting diverged: shadow %+v vs live %+v", shadowed, live)
	}
	compareInstances(t, liveInst, shadowInst)
}
