package trace

import (
	"reflect"
	"testing"

	"repro/internal/program"
	"repro/internal/types"
)

// touchProc performs a semantically idempotent write in p: the contents
// are unchanged, but the mutation counter advances and the warm analysis
// must treat the process as stale.
func touchProc(t *testing.T, p *program.Proc) {
	t.Helper()
	anchor := p.MustGlobal("anchor")
	w, err := p.Space().ReadWord(anchor.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Space().WriteWord(anchor.Addr, w); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRefreshIncremental pins the per-process invalidation contract:
// the first refresh analyzes everything, an idle refresh revalidates
// everything for free, and a write to one process re-analyzes exactly
// that process.
func TestWarmRefreshIncremental(t *testing.T) {
	shape := randShape(77, 3)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	procs := len(v1.Procs())

	w := NewWarmAnalysis(types.DefaultPolicy(), nil)
	if rs := w.Refresh(v1); rs.Reanalyzed != procs || rs.Revalidated != 0 {
		t.Fatalf("first refresh = %+v, want %d reanalyzed", rs, procs)
	}
	gen := w.Generation()
	if gen == 0 || w.Entries() != procs {
		t.Fatalf("gen=%d entries=%d after first refresh", gen, w.Entries())
	}
	// Idle instance: nothing to do, generation stays put.
	if rs := w.Refresh(v1); rs.Revalidated != procs || rs.Reanalyzed != 0 {
		t.Fatalf("idle refresh = %+v, want %d revalidated", rs, procs)
	}
	if w.Generation() != gen {
		t.Errorf("idle refresh advanced the generation: %d -> %d", gen, w.Generation())
	}
	// Touch only the root: exactly one process re-analyzes.
	touchProc(t, v1.Root())
	if rs := w.Refresh(v1); rs.Reanalyzed != 1 || rs.Revalidated != procs-1 {
		t.Fatalf("post-write refresh = %+v, want 1 reanalyzed / %d revalidated", rs, procs-1)
	}
	if w.Generation() != gen+1 {
		t.Errorf("generation = %d, want %d", w.Generation(), gen+1)
	}
	counts := w.ReanalysisCounts()
	if counts[v1.Root().Key()] != 2 {
		t.Errorf("root reanalyses = %d, want 2 (initial + invalidation)", counts[v1.Root().Key()])
	}
	for _, p := range v1.Procs() {
		if p.Key() != v1.Root().Key() && counts[p.Key()] != 1 {
			t.Errorf("proc %s reanalyses = %d, want 1 (initial only)", p.Key(), counts[p.Key()])
		}
	}
}

// TestWarmResolveMatchesFresh asserts the consumed warm analysis is
// identical to a fresh post-quiesce AnalyzeInstance run — warm or stale.
func TestWarmResolveMatchesFresh(t *testing.T) {
	shape := randShape(13, 2)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	procs := len(v1.Procs())

	w := NewWarmAnalysis(types.DefaultPolicy(), nil)
	w.Refresh(v1)

	fresh, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	analyses, reused, err := w.Resolve(v1)
	if err != nil {
		t.Fatal(err)
	}
	if reused != procs {
		t.Errorf("reused = %d, want %d (idle instance)", reused, procs)
	}
	if !reflect.DeepEqual(analyses, fresh) {
		t.Error("warm analyses differ from a fresh run over unchanged state")
	}

	// Invalidate the root after the last refresh: Resolve re-analyzes it
	// in-window and the result still matches a fresh run.
	touchProc(t, v1.Root())
	analyses2, reused2, err := w.Resolve(v1)
	if err != nil {
		t.Fatal(err)
	}
	if reused2 != procs-1 {
		t.Errorf("reused after root write = %d, want %d", reused2, procs-1)
	}
	fresh2, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(analyses2, fresh2) {
		t.Error("resolved analyses differ from the fresh run")
	}
}

// TestWarmRefreshDropsDeadProcs asserts entries of exited processes are
// dropped, not served stale.
func TestWarmRefreshDropsDeadProcs(t *testing.T) {
	shape := randShape(5, 3)
	v1 := startSynthV1(t, shape)
	defer v1.Terminate()
	procs := v1.Procs()
	if len(procs) < 2 {
		t.Fatal("scenario needs a child process")
	}

	w := NewWarmAnalysis(types.DefaultPolicy(), nil)
	w.Refresh(v1)
	if w.Entries() != len(procs) {
		t.Fatalf("entries = %d, want %d", w.Entries(), len(procs))
	}
	// Kill the last child; the next refresh must drop its entry.
	procs[len(procs)-1].KProc().Exit()
	rs := w.Refresh(v1)
	if rs.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", rs.Dropped)
	}
	if w.Entries() != len(procs)-1 {
		t.Errorf("entries = %d, want %d", w.Entries(), len(procs)-1)
	}
}
