package trace

import (
	"errors"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/types"
)

// figure2Version builds the Listing 1 / Figure 2 server: a linked list
// (precisely traced, relocated and type-transformed across versions) and a
// char buffer b holding a hidden pointer to a heap scratch buffer
// (conservatively scanned; its target is pinned immutable). withNew adds
// the `new` field to l_t, the Figure 2 update.
func figure2Version(seq int, withNew bool) *program.Version {
	reg := types.NewRegistry()
	lt := &types.Type{Name: "l_t", Kind: types.KindStruct}
	lt.Fields = []types.Field{
		{Name: "value", Offset: 0, Type: types.Scalar(types.KindInt32)},
		{Name: "next", Offset: 8, Type: types.PointerTo(lt)},
	}
	lt.Size, lt.Align = 16, 8
	if withNew {
		lt.Fields = append(lt.Fields, types.Field{
			Name: "new", Offset: 16, Type: types.Scalar(types.KindInt32)})
		lt.Size = 24
	}
	reg.Define(lt)
	reg.Define(types.StructOf("conf_s",
		types.Field{Name: "port", Type: types.Scalar(types.KindInt32)},
		types.Field{Name: "timeout", Type: types.Scalar(types.KindInt32)},
		types.Field{Name: "cache", Type: types.PointerTo(nil)},
	))
	reg.Define(&types.Type{Name: "confptr", Kind: types.KindPtr,
		Size: types.WordSize, Align: types.WordSize})
	buf8 := types.ArrayOf(8, types.Scalar(types.KindUint8))
	buf8.Name = "buf8"
	reg.Define(buf8)

	return &program.Version{
		Program: "figure2",
		Release: map[bool]string{false: "v1", true: "v2"}[withNew],
		Seq:     seq,
		Types:   reg,
		Globals: []program.GlobalSpec{
			{Name: "b", Type: "buf8"},
			{Name: "list", Type: "l_t"},
			{Name: "conf", Type: "confptr"},
		},
		Annotations: program.NewAnnotations(),
		Main:        figure2Main,
	}
}

func figure2Main(t *program.Thread) error {
	t.Enter("main")
	defer t.Exit()
	var lfd int
	err := t.Call("server_init", func() error {
		var err error
		lfd, err = t.Socket()
		if err != nil {
			return err
		}
		if err := t.Bind(lfd, 80); err != nil {
			return err
		}
		if err := t.Listen(lfd, 64); err != nil {
			return err
		}
		conf, err := t.Malloc("conf_s")
		if err != nil {
			return err
		}
		p := t.Proc()
		if err := p.WriteField(conf, "port", 80); err != nil {
			return err
		}
		if err := p.WriteField(conf, "timeout", 30); err != nil {
			return err
		}
		// A page-spanning startup-time config cache: reinitialized by
		// every version's own startup, so the dirty filter should skip
		// transferring it.
		cache, err := t.MallocBytes(16384)
		if err != nil {
			return err
		}
		blob := make([]byte, 16384)
		for i := range blob {
			blob[i] = byte(i)
		}
		if err := p.WriteBytes(cache, 0, blob); err != nil {
			return err
		}
		if err := p.SetPtr(conf, "cache", cache); err != nil {
			return err
		}
		return p.SetPtr(p.MustGlobal("conf"), "", conf)
	})
	if err != nil {
		return err
	}
	return t.Loop("main_loop", func() error {
		cfd, _, err := t.AcceptQP("accept@server_get_event", lfd)
		if err != nil {
			if errors.Is(err, program.ErrStopped) {
				return program.ErrLoopExit
			}
			return err
		}
		return t.Call("server_handle_event", func() error {
			p := t.Proc()
			node, err := t.Malloc("l_t")
			if err != nil {
				return err
			}
			head := p.MustGlobal("list")
			if err := p.WriteField(node, "value", 5); err != nil {
				return err
			}
			old, _ := p.ReadField(head, "next")
			if err := p.WriteField(node, "next", old); err != nil {
				return err
			}
			if err := p.WriteField(head, "next", uint64(node.Addr)); err != nil {
				return err
			}
			// Hidden pointer: a scratch heap buffer referenced only from
			// the char array b.
			scratch, err := t.MallocBytes(32)
			if err != nil {
				return err
			}
			if err := p.WriteBytes(scratch, 0, []byte("scratchpad-data")); err != nil {
				return err
			}
			if err := p.WriteWordAt(p.MustGlobal("b"), 0, uint64(scratch.Addr)); err != nil {
				return err
			}
			if err := t.Write(cfd, []byte("ok")); err != nil && !errors.Is(err, kernel.ErrClosed) {
				return err
			}
			return nil
		})
	})
}

// runV1 starts the v1 server, drives events through it, and quiesces it.
func runV1(t *testing.T, events int) *program.Instance {
	t.Helper()
	k := kernel.New()
	inst, err := program.NewInstance(figure2Version(0, false), k, program.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.WaitStartup(5 * time.Second); err != nil {
		t.Fatalf("v1 startup: %v", err)
	}
	inst.CompleteStartup()
	inst.Resume()
	for i := 0; i < events; i++ {
		cc, err := k.Connect(80)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Recv(2 * time.Second); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if _, err := inst.Quiesce(2 * time.Second); err != nil {
		t.Fatalf("v1 quiesce: %v", err)
	}
	return inst
}

// startV2 builds the new version with the immutable-object reservations
// derived from the old version's analysis, and runs its startup.
func startV2(t *testing.T, v *program.Version, an *Analysis) *program.Instance {
	t.Helper()
	k2 := kernel.New()
	opts := program.Options{PinnedStatics: ImmutableStatics(an)}
	inst, err := program.NewInstance(v, k2, opts)
	if err != nil {
		t.Fatal(err)
	}
	plan, reserve := ImmutableHeapPlan(an)
	inst.Root().Heap().SetPlacementPlan(plan)
	for _, o := range reserve {
		if _, err := inst.Root().Heap().AllocAt(o.Addr, o.Size, nil, o.Site); err != nil {
			t.Fatalf("pre-reserve %s: %v", o, err)
		}
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.WaitStartup(5 * time.Second); err != nil {
		t.Fatalf("v2 startup: %v", err)
	}
	inst.CompleteStartup()
	return inst
}

func defaultOpts() Options {
	return Options{Policy: types.DefaultPolicy()}
}

func TestAnalysisFindsLikelyPointers(t *testing.T) {
	v1 := runV1(t, 3)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// b holds one likely pointer into the heap (the latest scratch).
	if an.Stats.Likely.Ptr == 0 {
		t.Fatal("no likely pointers found")
	}
	if an.Stats.Likely.SrcStatic == 0 || an.Stats.Likely.TargDynamic == 0 {
		t.Errorf("likely breakdown = %+v, want static source, dynamic target", an.Stats.Likely)
	}
	// The list head and conf yield precise pointers.
	if an.Stats.Precise.Ptr < 2 {
		t.Errorf("precise pointers = %d, want >= 2", an.Stats.Precise.Ptr)
	}
	// The pinned scratch buffer is immutable and nonupdatable; b itself is
	// nonupdatable (contains a likely pointer).
	if len(an.Immutable) == 0 {
		t.Fatal("no immutable objects")
	}
	for addr, o := range an.Immutable {
		if o.Kind != mem.ObjHeap {
			t.Errorf("immutable %s not a heap object", o)
		}
		if !an.Nonupdatable[addr] {
			t.Error("immutable object not nonupdatable")
		}
	}
	b, _ := v1.Root().Global("b")
	if !an.Nonupdatable[b.Addr] {
		t.Error("b (contains likely pointer) not nonupdatable")
	}
	// Untouched statics are freely updatable.
	list, _ := v1.Root().Global("list")
	if an.IsImmutable(list.Addr) {
		t.Error("list head wrongly immutable")
	}
}

func TestFullPolicyAblation(t *testing.T) {
	v1 := runV1(t, 3)
	defer v1.Terminate()
	// Under the fully precise policy, char arrays are not scanned: the
	// hidden pointer in b goes unseen (the annotation burden prior
	// solutions impose) and nothing is pinned.
	an, err := AnalyzeProc(v1.Root(), types.FullyPrecisePolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Uninstrumented scratch buffers are still opaque blobs, but b's
	// content is not examined, so the live scratch target is missed.
	b, _ := v1.Root().Global("b")
	if an.Nonupdatable[b.Addr] {
		t.Error("precise policy still marked b nonupdatable")
	}
}

func TestFigure2Transfer(t *testing.T) {
	v1 := runV1(t, 3)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2 := startV2(t, figure2Version(1, true), an)
	defer v2.Terminate()

	stats, err := TransferProc(v1.Root(), v2.Root(), an, defaultOpts())
	if err != nil {
		t.Fatalf("TransferProc: %v", err)
	}
	if stats.ObjectsTransferred == 0 || stats.TypeTransformed == 0 {
		t.Errorf("stats = %+v", stats)
	}

	oldP, newP := v1.Root(), v2.Root()
	// (1) The list chain survives with values intact, `new` zeroed, and
	// relocated nodes (v2 is a different heap state and the type grew).
	oldHead := oldP.MustGlobal("list")
	newHead := newP.MustGlobal("list")
	oldNode, _ := oldP.ReadPtr(oldHead, "next")
	count := 0
	node, ok := newP.ReadPtr(newHead, "next")
	for ok {
		count++
		if v, _ := newP.ReadField(node, "value"); v != 5 {
			t.Errorf("node %d value = %d, want 5", count, v)
		}
		if v, _ := newP.ReadField(node, "new"); v != 0 {
			t.Errorf("node %d new = %d, want 0", count, v)
		}
		node, ok = newP.ReadPtr(node, "next")
	}
	if count != 3 {
		t.Fatalf("transferred list has %d nodes, want 3", count)
	}
	firstNew, _ := newP.ReadPtr(newHead, "next")
	if oldNode != nil && firstNew != nil && firstNew.Addr == oldNode.Addr {
		t.Error("transformed node not relocated (type grew but address kept)")
	}

	// (2) b's hidden pointer is preserved verbatim and its target exists
	// at the same address in v2 with identical content.
	oldBVal, _ := oldP.ReadWordAt(oldP.MustGlobal("b"), 0)
	newBVal, _ := newP.ReadWordAt(newP.MustGlobal("b"), 0)
	if oldBVal != newBVal {
		t.Fatalf("b content changed: %#x -> %#x", oldBVal, newBVal)
	}
	pinned, ok := newP.Index().At(mem.Addr(newBVal))
	if !ok {
		t.Fatal("immutable scratch buffer missing in v2")
	}
	data, _ := newP.ReadBytes(pinned, 0, 15)
	if string(data) != "scratchpad-data" {
		t.Errorf("pinned buffer content = %q", data)
	}

	// (3) conf was startup-initialized and clean: v2 keeps its own
	// reinitialized copy (skipped by the dirty filter).
	if stats.ObjectsSkippedClean == 0 {
		t.Error("no clean startup objects skipped")
	}
	conf, ok := newP.ReadPtr(newP.MustGlobal("conf"), "")
	if !ok {
		t.Fatal("v2 conf pointer lost")
	}
	if v, _ := newP.ReadField(conf, "port"); v != 80 {
		t.Errorf("v2 conf.port = %d", v)
	}
}

func TestTransferIdenticalVersionPreservesEverything(t *testing.T) {
	v1 := runV1(t, 2)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2 := startV2(t, figure2Version(1, false), an)
	defer v2.Terminate()
	if _, err := TransferProc(v1.Root(), v2.Root(), an, defaultOpts()); err != nil {
		t.Fatalf("TransferProc: %v", err)
	}
	newP := v2.Root()
	count := 0
	node, ok := newP.ReadPtr(newP.MustGlobal("list"), "next")
	for ok {
		count++
		node, ok = newP.ReadPtr(node, "next")
	}
	if count != 2 {
		t.Errorf("list nodes = %d, want 2", count)
	}
}

func TestNonupdatableTypeChangeConflicts(t *testing.T) {
	// The update changes the layout of an object reached conservatively:
	// mutable tracing must flag a conflict, not corrupt state.
	v1 := runV1(t, 1)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Force the scratch buffer (immutable, untyped) to "change type" by
	// faking an analysis in which b itself changed: simplest real case —
	// mark the list head nonupdatable and grow l_t.
	list, _ := v1.Root().Global("list")
	an.Nonupdatable[list.Addr] = true

	v2 := startV2(t, figure2Version(1, true), an)
	defer v2.Terminate()
	_, err = TransferProc(v1.Root(), v2.Root(), an, defaultOpts())
	if !errors.Is(err, ErrTransferConflict) {
		t.Fatalf("err = %v, want ErrTransferConflict", err)
	}
}

func TestObjHandlerOverride(t *testing.T) {
	// An object handler takes over transfer of b: it decodes the stored
	// pointer, remaps it through the pair table (which for an immutable
	// target is the identity), and re-encodes it with a marker bit — the
	// nginx pointer-encoding annotation pattern.
	v1 := runV1(t, 2)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2ver := figure2Version(1, true)
	var handlerRan bool
	v2ver.Annotations.AddObjHandler("b", 22, func(tc program.TransferContext, oldObj, newObj *mem.Object) error {
		handlerRan = true
		v, err := tc.OldProc().ReadWordAt(oldObj, 0)
		if err != nil {
			return err
		}
		nv, ok := tc.RemapPtr(v)
		if !ok {
			nv = v
		}
		return tc.NewProc().WriteWordAt(newObj, 0, nv|1) // set marker bit
	})
	v2 := startV2(t, v2ver, an)
	defer v2.Terminate()
	stats, err := TransferProc(v1.Root(), v2.Root(), an, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !handlerRan || stats.HandlerInvocations != 1 {
		t.Fatalf("handler not invoked (stats %+v)", stats)
	}
	oldV, _ := v1.Root().ReadWordAt(v1.Root().MustGlobal("b"), 0)
	newV, _ := v2.Root().ReadWordAt(v2.Root().MustGlobal("b"), 0)
	if newV != oldV|1 {
		t.Errorf("handler output = %#x, want %#x", newV, oldV|1)
	}
}

func TestDirtyFilterAblation(t *testing.T) {
	v1 := runV1(t, 3)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2a := startV2(t, figure2Version(1, false), an)
	defer v2a.Terminate()
	withFilter, err := TransferProc(v1.Root(), v2a.Root(), an, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	v2b := startV2(t, figure2Version(1, false), an)
	defer v2b.Terminate()
	noFilterOpts := defaultOpts()
	noFilterOpts.DisableDirtyFilter = true
	withoutFilter, err := TransferProc(v1.Root(), v2b.Root(), an, noFilterOpts)
	if err != nil {
		t.Fatal(err)
	}
	if withFilter.BytesTransferred >= withoutFilter.BytesTransferred {
		t.Errorf("dirty filter did not reduce transfer: %d vs %d",
			withFilter.BytesTransferred, withoutFilter.BytesTransferred)
	}
	if withFilter.DirtyReduction() <= 0 {
		t.Errorf("DirtyReduction = %v", withFilter.DirtyReduction())
	}
}

func TestTransferInstanceParallelAndMissingProc(t *testing.T) {
	v1 := runV1(t, 1)
	defer v1.Terminate()
	analyses, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2 := startV2(t, figure2Version(1, true), analyses[program.RootKey])
	defer v2.Terminate()
	stats, err := TransferInstance(v1, v2, analyses, defaultOpts())
	if err != nil {
		t.Fatalf("TransferInstance: %v", err)
	}
	if stats.ObjectsTransferred == 0 {
		t.Error("nothing transferred")
	}
	agg := AggregateStats(analyses)
	if agg.Likely.Ptr == 0 {
		t.Error("aggregate stats empty")
	}
}

func TestImmutableHeapPlanSplit(t *testing.T) {
	an := &Analysis{
		Immutable: map[mem.Addr]*mem.Object{
			0x1000: {Addr: 0x1000, Size: 32, Kind: mem.ObjHeap, Startup: true, Site: 7, Seq: 1},
			0x2000: {Addr: 0x2000, Size: 32, Kind: mem.ObjHeap, Startup: false, Site: 9, Seq: 2},
			0x3000: {Addr: 0x3000, Size: 32, Kind: mem.ObjStatic, Name: "g"},
		},
		Nonupdatable: map[mem.Addr]bool{},
	}
	plan, reserve := ImmutableHeapPlan(an)
	if len(plan) != 1 {
		t.Errorf("plan = %v, want 1 entry", plan)
	}
	if got := plan[mem.PlanKey{Site: 7, Seq: 1}]; got != 0x1000 {
		t.Errorf("plan addr = %#x", got)
	}
	if len(reserve) != 1 || reserve[0].Addr != 0x2000 {
		t.Errorf("reserve = %v", reserve)
	}
	statics := ImmutableStatics(an)
	if statics["g"] != 0x3000 {
		t.Errorf("statics = %v", statics)
	}
}
