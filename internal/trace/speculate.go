// Speculative update-time analysis: the pipelined update engine runs the
// conservative pointer analysis while the old version is still serving
// (overlapped with the pre-copy epochs), then validates it at quiescence
// against the memory substrate's delta counters. A process that was not
// written to — and did not allocate or free — between the speculative
// capture and quiescence has an analysis identical to what a post-quiesce
// run would produce, so only invalidated processes are re-analyzed inside
// the downtime window.
package trace

import (
	"fmt"

	"repro/internal/program"
	"repro/internal/types"
)

// specEntry is one process's speculative analysis plus the delta-counter
// capture taken immediately before analyzing it.
type specEntry struct {
	an        *Analysis
	err       error
	mutations uint64 // AddressSpace.Mutations at capture
	indexGen  uint64 // ObjectIndex.Gen at capture
}

// Speculation is an in-flight (or finished) speculative analysis of a
// still-running instance. Build one with Speculate, then call Resolve
// after the instance has quiesced.
type Speculation struct {
	pol  types.Policy
	libs map[string]bool
	done chan struct{}
	res  map[program.ProcKey]*specEntry // written only by the goroutine, read after done
}

// Speculate starts analyzing every process of the (still serving)
// instance in the background. Reads synchronize through each address
// space's lock, so the walk is race-free; any process written during or
// after its analysis is detected by Resolve and re-analyzed.
func Speculate(inst *program.Instance, pol types.Policy, libs map[string]bool) *Speculation {
	s := &Speculation{
		pol:  pol,
		libs: libs,
		done: make(chan struct{}),
		res:  make(map[program.ProcKey]*specEntry),
	}
	go func() {
		defer close(s.done)
		for _, p := range inst.Procs() {
			// Capture the counters before reading anything: a write that
			// lands mid-analysis advances them past the capture and fails
			// validation.
			e := &specEntry{
				mutations: p.Space().Mutations(),
				indexGen:  p.Index().Gen(),
			}
			e.an, e.err = AnalyzeProc(p, pol, libs)
			s.res[p.Key()] = e
		}
	}()
	return s
}

// Wait blocks until the background analysis finishes (used on early exits
// so no goroutine outlives the update attempt).
func (s *Speculation) Wait() { <-s.done }

// Done returns a channel closed when the background analysis finishes —
// the engine selects on it so a deadline trip can abandon a wedged
// speculation instead of joining it unconditionally.
func (s *Speculation) Done() <-chan struct{} { return s.done }

// Resolve waits for the speculative pass, validates each process's entry
// against the current delta counters, and re-analyzes every process whose
// entry is missing, errored or stale. The instance must be quiesced. It
// returns the per-process analyses and how many were reused as captured.
func (s *Speculation) Resolve(inst *program.Instance) (map[program.ProcKey]*Analysis, int, error) {
	<-s.done
	out := make(map[program.ProcKey]*Analysis)
	reused := 0
	for _, p := range inst.Procs() {
		if e, ok := s.res[p.Key()]; ok && e.err == nil &&
			e.mutations == p.Space().Mutations() && e.indexGen == p.Index().Gen() {
			out[p.Key()] = e.an
			reused++
			continue
		}
		an, err := AnalyzeProc(p, s.pol, s.libs)
		if err != nil {
			return nil, reused, fmt.Errorf("trace: analyze %s: %w", p.Key(), err)
		}
		out[p.Key()] = an
	}
	return out, reused, nil
}
