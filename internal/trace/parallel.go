package trace

import (
	"sync"
	"sync/atomic"

	"repro/internal/mem"
)

// visitedStripes is the lock striping factor of the shared visited set.
// Power of two so the stripe index is a mask; 64 stripes keep contention
// negligible up to any realistic worker count.
const visitedStripes = 64

// visitedSet is a lock-striped address set: the parallel BFS's shared
// "already queued" state. Objects never share a start address, so striping
// by address bits gives contention-free claims for unrelated objects.
type visitedSet struct {
	stripes [visitedStripes]visitedStripe
}

type visitedStripe struct {
	mu sync.Mutex
	m  map[mem.Addr]bool
	// Pad the 16 bytes of mutex + map header to a full 64-byte cache
	// line so neighboring stripes don't false-share.
	_ [48]byte
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.stripes {
		v.stripes[i].m = make(map[mem.Addr]bool)
	}
	return v
}

// claim marks addr visited and reports whether this call was the first to
// do so (the caller then owns enqueueing the object).
func (v *visitedSet) claim(addr mem.Addr) bool {
	// Low bits are alignment; bits above the 16-byte granule spread well.
	s := &v.stripes[(uint64(addr)>>4)%visitedStripes]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[addr] {
		return false
	}
	s.m[addr] = true
	return true
}

// scanFailure is one object whose pointer scan failed; failures are merged
// by object address so the reported error does not depend on worker
// scheduling.
type scanFailure struct {
	addr mem.Addr
	err  error
}

func mergeFailure(cur scanFailure, addr mem.Addr, err error) scanFailure {
	if cur.err == nil || addr < cur.addr {
		return scanFailure{addr: addr, err: err}
	}
	return cur
}

// workQueue is the shared BFS worklist: a LIFO of claimed-but-unscanned
// objects plus a pending count (queued + in flight) for termination
// detection. LIFO keeps the hot end of the queue in cache and needs no
// wave barriers, so deep chains (linked lists) cost one queue operation
// per object instead of one synchronization round per level.
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*mem.Object
	pending int
}

func newWorkQueue(initial []*mem.Object) *workQueue {
	q := &workQueue{items: append([]*mem.Object(nil), initial...), pending: len(initial)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *workQueue) push(o *mem.Object) {
	q.mu.Lock()
	q.items = append(q.items, o)
	q.pending++
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available or the queue has fully drained
// (no queued items and none in flight), returning nil in the latter case.
func (q *workQueue) pop() *mem.Object {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && q.pending > 0 {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	o := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return o
}

// taskDone retires one in-flight item (its successors were already
// pushed); the last retirement wakes every blocked worker to exit.
func (q *workQueue) taskDone() {
	q.mu.Lock()
	q.pending--
	if q.pending == 0 {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// discoverParallel is the worker-pool graph traversal: workers pull
// objects off the shared worklist, claim successors through the striped
// visited set, and push the ones they won. Newly discovered objects
// accumulate in worker-local lists merged at the end; the caller
// canonicalizes the result order, so traversal order is free to be
// nondeterministic.
func (pt *procTransfer) discoverParallel(roots []*mem.Object, workers int) ([]*mem.Object, error) {
	visited := newVisitedSet()
	var initial []*mem.Object
	for _, o := range roots {
		if visited.claim(o.Addr) {
			initial = append(initial, o)
		}
	}
	q := newWorkQueue(initial)
	locals := make([][]*mem.Object, workers)
	fails := make([]scanFailure, workers)
	// Cancellation drains the queue instead of abandoning it: a worker
	// that returned early would strand the pending count and deadlock the
	// others in pop, so canceled workers keep popping (skipping the scan,
	// which also stops new pushes) until the queue runs dry.
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var scratch []byte
			for {
				o := q.pop()
				if o == nil {
					return
				}
				if canceled.Load() || pt.canceled() {
					canceled.Store(true)
					q.taskDone()
					continue
				}
				err := pt.scanObject(o, &scratch, func(t *mem.Object) {
					if visited.claim(t.Addr) {
						locals[k] = append(locals[k], t)
						q.push(t)
					}
				})
				if err != nil {
					fails[k] = mergeFailure(fails[k], o.Addr, err)
				}
				q.taskDone()
			}
		}(k)
	}
	wg.Wait()
	if canceled.Load() {
		return nil, ErrCanceled
	}
	var fail scanFailure
	for _, f := range fails {
		if f.err != nil {
			fail = mergeFailure(fail, f.addr, f.err)
		}
	}
	if fail.err != nil {
		return nil, fail.err
	}
	out := initial
	for _, l := range locals {
		out = append(out, l...)
	}
	return out, nil
}

// copyContentsParallel fans the paired objects out to a worker pool. All
// pairs are processed even when one conflicts — the extra work is bounded
// and discarded by rollback anyway — so the returned error is always the
// lowest-index conflict, exactly the one the sequential pass hits first.
func (pt *procTransfer) copyContentsParallel(reachable []*mem.Object, workers int) error {
	w := workers
	if w > len(reachable) {
		w = len(reachable)
	}
	shards := make([]Stats, w)
	errs := make([]error, len(reachable))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			var scratch []byte
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(reachable) {
					return
				}
				errs[i] = pt.transferOne(reachable[i], &shards[k], &scratch)
			}
		}(k)
	}
	wg.Wait()
	for _, s := range shards {
		pt.stats.Add(s)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
