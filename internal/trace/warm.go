// Warm speculative analysis: the between-updates counterpart of
// speculate.go. Speculate runs the conservative analysis once, inside one
// update attempt; WarmAnalysis keeps an analysis continuously current
// while the old version serves, so an update can begin at quiescence with
// the analysis already in hand. Each refresh pass revalidates every
// process against the memory substrate's delta counters
// (mem.AddressSpace.Mutations, mem.ObjectIndex.Gen) and re-analyzes only
// the processes those counters invalidated — a fork-heavy server whose
// traffic writes to a few processes re-analyzes exactly those few.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/program"
	"repro/internal/types"
)

// warmEntry is one process's current analysis plus the delta-counter
// capture taken immediately before it was (re)computed.
type warmEntry struct {
	an        *Analysis
	mutations uint64 // AddressSpace.Mutations at capture
	indexGen  uint64 // ObjectIndex.Gen at capture
}

// WarmRefresh summarizes one Refresh pass.
type WarmRefresh struct {
	Revalidated int // processes whose counters still matched (no work)
	Reanalyzed  int // processes re-analyzed because their deltas advanced
	Dropped     int // entries dropped for processes that exited
	Errors      int // analyses that failed mid-refresh (entry invalidated)
}

// WarmAnalysis is a per-process conservative analysis kept incrementally
// current against a running instance. The warm-standby daemon calls
// Refresh between updates; the update engine calls Resolve at quiescence
// and consumes the result. All methods are safe for concurrent use,
// though Refresh passes are expected to be serialized by the caller.
type WarmAnalysis struct {
	pol  types.Policy
	libs map[string]bool

	mu      sync.Mutex
	entries map[program.ProcKey]*warmEntry
	// gen advances every time any process's analysis is recomputed: the
	// "analysis generation" operators see in the warm status line.
	gen uint64
	// reanalyses counts recomputations per process across the analysis's
	// lifetime — the per-process invalidation skew the fork-heavy
	// experiment reports.
	reanalyses map[program.ProcKey]int
}

// NewWarmAnalysis builds an empty warm analysis; the first Refresh (or
// Resolve) analyzes every process.
func NewWarmAnalysis(pol types.Policy, libs map[string]bool) *WarmAnalysis {
	return &WarmAnalysis{
		pol:        pol,
		libs:       libs,
		entries:    make(map[program.ProcKey]*warmEntry),
		reanalyses: make(map[program.ProcKey]int),
	}
}

// Refresh brings the analysis up to date with the (still serving)
// instance: every live process whose delta counters moved past its
// entry's capture — or that has no entry yet — is re-analyzed; untouched
// processes are revalidated for free. Entries of exited processes are
// dropped. Reads synchronize through each address space's lock, and the
// counters are captured before reading anything, so a write landing
// mid-analysis advances them past the capture and the next pass (or
// Resolve) re-analyzes. An analysis error (a region unmapped mid-walk)
// invalidates the entry and is counted, not returned: the daemon keeps
// running and the entry heals on a later pass or at quiescence.
func (w *WarmAnalysis) Refresh(inst *program.Instance) WarmRefresh {
	var rs WarmRefresh
	live := make(map[program.ProcKey]bool)
	for _, p := range inst.Procs() {
		key := p.Key()
		live[key] = true
		w.mu.Lock()
		e, ok := w.entries[key]
		w.mu.Unlock()
		if ok && e.mutations == p.Space().Mutations() && e.indexGen == p.Index().Gen() {
			rs.Revalidated++
			continue
		}
		ne := &warmEntry{
			mutations: p.Space().Mutations(),
			indexGen:  p.Index().Gen(),
		}
		an, err := AnalyzeProc(p, w.pol, w.libs)
		w.mu.Lock()
		if err != nil {
			delete(w.entries, key)
			rs.Errors++
		} else {
			ne.an = an
			w.entries[key] = ne
			w.gen++
			w.reanalyses[key]++
			rs.Reanalyzed++
		}
		w.mu.Unlock()
	}
	w.mu.Lock()
	for key := range w.entries {
		if !live[key] {
			delete(w.entries, key)
			rs.Dropped++
		}
	}
	w.mu.Unlock()
	return rs
}

// Resolve validates every process's warm entry against the current delta
// counters and re-analyzes whatever they invalidated — the same contract
// as Speculation.Resolve, but against an analysis kept warm across the
// serving window instead of captured once per update. The instance must
// be quiesced. It returns the per-process analyses and how many were
// reused as captured. In-window re-analyses are counted in the
// per-process reanalysis tally like warm refreshes are.
func (w *WarmAnalysis) Resolve(inst *program.Instance) (map[program.ProcKey]*Analysis, int, error) {
	out := make(map[program.ProcKey]*Analysis)
	reused := 0
	for _, p := range inst.Procs() {
		key := p.Key()
		w.mu.Lock()
		e, ok := w.entries[key]
		w.mu.Unlock()
		if ok && e.mutations == p.Space().Mutations() && e.indexGen == p.Index().Gen() {
			out[key] = e.an
			reused++
			continue
		}
		an, err := AnalyzeProc(p, w.pol, w.libs)
		if err != nil {
			return nil, reused, fmt.Errorf("trace: analyze %s: %w", key, err)
		}
		out[key] = an
		w.mu.Lock()
		w.gen++
		w.reanalyses[key]++
		w.mu.Unlock()
	}
	return out, reused, nil
}

// Stale reports whether any live process lacks a currently valid entry:
// the instantaneous analysis-currency probe, costing one delta-counter
// comparison per process and no analysis work. A false return means a
// Resolve run right now would reuse every entry.
func (w *WarmAnalysis) Stale(inst *program.Instance) bool {
	for _, p := range inst.Procs() {
		w.mu.Lock()
		e, ok := w.entries[p.Key()]
		w.mu.Unlock()
		if !ok || e.mutations != p.Space().Mutations() || e.indexGen != p.Index().Gen() {
			return true
		}
	}
	return false
}

// Generation returns the analysis generation: a counter that advances on
// every per-process recomputation. Equal readings bracket a span in which
// the warm analysis did not change.
func (w *WarmAnalysis) Generation() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gen
}

// Entries returns the number of processes currently holding a warm entry.
func (w *WarmAnalysis) Entries() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.entries)
}

// ReanalysisCounts returns a copy of the per-process recomputation tally
// (warm refreshes plus in-window Resolve re-analyses).
func (w *WarmAnalysis) ReanalysisCounts() map[program.ProcKey]int {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[program.ProcKey]int, len(w.reanalyses))
	for k, v := range w.reanalyses {
		out[k] = v
	}
	return out
}
