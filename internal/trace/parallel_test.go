package trace

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/types"
)

// synthShape is one deterministic pseudo-random heap layout: a precisely
// traced linked list of typed nodes plus a web of opaque blobs holding
// hidden pointers (conservatively scanned, targets pinned immutable).
// Children get shapes of their own, built after forking.
type synthShape struct {
	nodes     int
	blobSizes []int
	links     [][3]int // src blob, dst blob, 8-aligned byte offset in src
	children  []*synthShape
}

// randShape derives a reproducible shape for a root process and procs-1
// forked children from seed.
func randShape(seed int64, procs int) *synthShape {
	rnd := rand.New(rand.NewSource(seed))
	mk := func() *synthShape {
		s := &synthShape{nodes: 20 + rnd.Intn(60)}
		nblobs := 4 + rnd.Intn(12)
		for i := 0; i < nblobs; i++ {
			s.blobSizes = append(s.blobSizes, 16+rnd.Intn(480))
		}
		// Chain-link so every blob is reachable from blob 0, then add a few
		// random cross links.
		for i := 1; i < nblobs; i++ {
			off := 8 * rnd.Intn(s.blobSizes[i-1]/8)
			s.links = append(s.links, [3]int{i - 1, i, off})
		}
		for n := rnd.Intn(8); n > 0; n-- {
			src := rnd.Intn(nblobs)
			off := 8 * rnd.Intn(s.blobSizes[src]/8)
			s.links = append(s.links, [3]int{src, rnd.Intn(nblobs), off})
		}
		return s
	}
	root := mk()
	for i := 1; i < procs; i++ {
		root.children = append(root.children, mk())
	}
	return root
}

// synthVersion builds a program version over the shape. grow adds a field
// to node_t (within the same allocator size class, so heap addresses stay
// put and only the type transformation is exercised); seq > 0 shifts the
// static layout, forcing relocation of globals.
func synthVersion(seq int, shape *synthShape, grow bool) *program.Version {
	reg := types.NewRegistry()
	node := &types.Type{Name: "node_t", Kind: types.KindStruct}
	node.Fields = []types.Field{
		{Name: "value", Offset: 0, Type: types.Scalar(types.KindInt64)},
		{Name: "next", Offset: 8, Type: types.PointerTo(node)},
		{Name: "buddy", Offset: 16, Type: types.PointerTo(node)},
	}
	node.Size, node.Align = 24, 8
	if grow {
		node.Fields = append(node.Fields, types.Field{
			Name: "gen", Offset: 24, Type: types.Scalar(types.KindInt64)})
		node.Size = 32
	}
	reg.Define(node)
	return &program.Version{
		Program: "synthheap",
		Release: fmt.Sprintf("v%d", seq+1),
		Seq:     seq,
		Types:   reg,
		Globals: []program.GlobalSpec{
			{Name: "list", Type: "node_t"},
			{Name: "anchor", Size: 64},
		},
		Annotations: program.NewAnnotations(),
		Main:        synthMain(shape),
	}
}

func synthMain(shape *synthShape) func(*program.Thread) error {
	return func(t *program.Thread) error {
		t.Enter("main")
		defer t.Exit()
		if err := t.Call("synth_init", func() error {
			return buildSynthHeap(t, shape)
		}); err != nil {
			return err
		}
		for i, cs := range shape.children {
			cs := cs
			name := fmt.Sprintf("child_%d", i)
			if _, err := t.ForkProc(name, synthChildMain(name, cs)); err != nil {
				return err
			}
		}
		return synthIdle(t)
	}
}

func synthChildMain(name string, shape *synthShape) func(*program.Thread) error {
	return func(t *program.Thread) error {
		t.Enter(name)
		defer t.Exit()
		if err := t.Call(name+"_init", func() error {
			return buildSynthHeap(t, shape)
		}); err != nil {
			return err
		}
		return synthIdle(t)
	}
}

func synthIdle(t *program.Thread) error {
	return t.Loop("synth_loop", func() error {
		if err := t.IdleQP("idle@synth_loop"); err != nil {
			if errors.Is(err, program.ErrStopped) {
				return program.ErrLoopExit
			}
			return err
		}
		return nil
	})
}

// buildSynthHeap allocates the shape into the calling process: the typed
// list chained off the "list" global, then the opaque blobs, hidden
// pointers between them, and the anchor word that roots the blob web.
func buildSynthHeap(t *program.Thread, shape *synthShape) error {
	p := t.Proc()
	head := p.MustGlobal("list")
	prev := head
	for i := 0; i < shape.nodes; i++ {
		n, err := t.Malloc("node_t")
		if err != nil {
			return err
		}
		if err := p.WriteField(n, "value", uint64(i)*7+1); err != nil {
			return err
		}
		if err := p.WriteField(prev, "next", uint64(n.Addr)); err != nil {
			return err
		}
		if i%3 == 0 {
			if err := p.WriteField(n, "buddy", uint64(head.Addr)); err != nil {
				return err
			}
		}
		prev = n
	}
	blobs := make([]*mem.Object, len(shape.blobSizes))
	for i, sz := range shape.blobSizes {
		b, err := t.MallocBytes(uint64(sz))
		if err != nil {
			return err
		}
		// 0xA5-filled words never alias a mapped address, so the only
		// likely pointers a conservative scan finds are the planted links.
		fill := bytes.Repeat([]byte{0xA5}, sz)
		if err := p.WriteBytes(b, 0, fill); err != nil {
			return err
		}
		blobs[i] = b
	}
	for _, l := range shape.links {
		if err := p.WriteWordAt(blobs[l[0]], uint64(l[2]), uint64(blobs[l[1]].Addr)); err != nil {
			return err
		}
	}
	return p.WriteWordAt(p.MustGlobal("anchor"), 0, uint64(blobs[0].Addr))
}

// startSynth runs a version to its startup-complete quiescent state.
func startSynth(t *testing.T, v *program.Version, opts program.Options, plan map[mem.PlanKey]mem.Addr, reserve []*mem.Object) *program.Instance {
	t.Helper()
	inst, err := program.NewInstance(v, kernel.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		inst.Root().Heap().SetPlacementPlan(plan)
	}
	for _, o := range reserve {
		if _, err := inst.Root().Heap().AllocAt(o.Addr, o.Size, nil, o.Site); err != nil {
			t.Fatalf("pre-reserve %s: %v", o, err)
		}
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.WaitStartup(10 * time.Second); err != nil {
		t.Fatalf("startup %s: %v", v, err)
	}
	inst.CompleteStartup()
	return inst
}

func startSynthV1(t *testing.T, shape *synthShape) *program.Instance {
	t.Helper()
	return startSynth(t, synthVersion(0, shape, false), program.Options{}, nil, nil)
}

func startSynthV2(t *testing.T, shape *synthShape, grow bool, analyses map[program.ProcKey]*Analysis) *program.Instance {
	t.Helper()
	plan, reserve, pinned := CombinedPlacement(analyses)
	return startSynth(t, synthVersion(1, shape, grow),
		program.Options{PinnedStatics: pinned}, plan, reserve)
}

// compareInstances asserts two new-version instances are bit-identical:
// same processes, same object universes, same memory contents.
func compareInstances(t *testing.T, a, b *program.Instance) {
	t.Helper()
	aprocs := a.Procs()
	if len(aprocs) != len(b.Procs()) {
		t.Fatalf("proc count: %d vs %d", len(aprocs), len(b.Procs()))
	}
	for _, ap := range aprocs {
		bp, ok := b.ProcByKey(ap.Key())
		if !ok {
			t.Fatalf("proc %s missing in second instance", ap.Key())
		}
		aobjs, bobjs := ap.Index().All(), bp.Index().All()
		if len(aobjs) != len(bobjs) {
			t.Fatalf("proc %s: object count %d vs %d", ap.Key(), len(aobjs), len(bobjs))
		}
		for i, ao := range aobjs {
			bo := bobjs[i]
			if ao.Addr != bo.Addr || ao.Size != bo.Size || ao.Kind != bo.Kind ||
				ao.Site != bo.Site || ao.Seq != bo.Seq || ao.Name != bo.Name {
				t.Fatalf("proc %s object %d diverged: %s vs %s", ap.Key(), i, ao, bo)
			}
			abuf := make([]byte, ao.Size)
			bbuf := make([]byte, bo.Size)
			if err := ap.Space().ReadAt(ao.Addr, abuf); err != nil {
				t.Fatal(err)
			}
			if err := bp.Space().ReadAt(bo.Addr, bbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(abuf, bbuf) {
				t.Fatalf("proc %s: contents of %s differ between sequential and parallel transfer", ap.Key(), ao)
			}
		}
	}
}

// transferSynth runs one full analyze+transfer of v1 into a fresh v2 at
// the given parallelism and returns the stats and the transferred instance.
func transferSynth(t *testing.T, v1 *program.Instance, shape *synthShape, grow bool, par int, disableDirty bool) (Stats, *program.Instance) {
	t.Helper()
	analyses, err := AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2 := startSynthV2(t, shape, grow, analyses)
	stats, err := TransferInstance(v1, v2, analyses, Options{
		Policy:             types.DefaultPolicy(),
		DisableDirtyFilter: disableDirty,
		Parallelism:        par,
	})
	if err != nil {
		v2.Terminate()
		t.Fatalf("transfer (parallelism=%d): %v", par, err)
	}
	return stats, v2
}

// TestParallelTransferDeterminism asserts that a parallel transfer is
// bit-identical to the sequential one: same Stats, same object universe,
// same remapped memory contents — the acceptance bar for rollback
// reproducibility.
func TestParallelTransferDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name  string
		procs int
		seed  int64
	}{
		{"single-proc", 1, 42},
		{"multi-proc", 3, 7},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			shape := randShape(tc.seed, tc.procs)
			v1 := startSynthV1(t, shape)
			defer v1.Terminate()

			seqStats, seqInst := transferSynth(t, v1, shape, true, 1, true)
			defer seqInst.Terminate()
			parStats, parInst := transferSynth(t, v1, shape, true, 8, true)
			defer parInst.Terminate()

			if !reflect.DeepEqual(seqStats, parStats) {
				t.Fatalf("stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
			}
			if seqStats.ObjectsTransferred == 0 || seqStats.TypeTransformed == 0 {
				t.Fatalf("degenerate transfer, nothing exercised: %+v", seqStats)
			}
			compareInstances(t, seqInst, parInst)
		})
	}
}

// TestParallelTransferRaceStress repeatedly transfers randomized
// multi-process heaps at Parallelism > 1; run under -race it shakes out
// unsynchronized access in the discovery and copy worker pools.
func TestParallelTransferRaceStress(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			shape := randShape(seed*101, 2+int(seed%2))
			v1 := startSynthV1(t, shape)
			defer v1.Terminate()
			for rep := 0; rep < 2; rep++ {
				stats, v2 := transferSynth(t, v1, shape, rep == 1, 4, rep == 0)
				if stats.ObjectsDiscovered == 0 {
					t.Fatalf("rep %d: nothing discovered", rep)
				}
				v2.Terminate()
			}
		})
	}
}

// TestParallelFigure2MatchesSequential re-runs the paper's Figure 2
// scenario (dirty filter on, handlers absent, immutable pinned scratch)
// at Parallelism 8 and checks the stats match the sequential baseline.
func TestParallelFigure2MatchesSequential(t *testing.T) {
	v1 := runV1(t, 3)
	defer v1.Terminate()
	an, err := AnalyzeProc(v1.Root(), types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v2a := startV2(t, figure2Version(1, true), an)
	defer v2a.Terminate()
	seqOpts := defaultOpts()
	seqOpts.Parallelism = 1
	seqStats, err := TransferProc(v1.Root(), v2a.Root(), an, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	v2b := startV2(t, figure2Version(1, true), an)
	defer v2b.Terminate()
	parOpts := defaultOpts()
	parOpts.Parallelism = 8
	parStats, err := TransferProc(v1.Root(), v2b.Root(), an, parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqStats, parStats) {
		t.Fatalf("stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
	}
}

// TestOptionsWorkers pins the Parallelism resolution contract.
func TestOptionsWorkers(t *testing.T) {
	if got := (Options{Parallelism: 1}).workers(); got != 1 {
		t.Errorf("Parallelism=1 -> %d workers", got)
	}
	if got := (Options{Parallelism: 6}).workers(); got != 6 {
		t.Errorf("Parallelism=6 -> %d workers", got)
	}
	if got := (Options{}).workers(); got < 1 {
		t.Errorf("default workers = %d, want >= 1", got)
	}
	if got := (Options{Parallelism: -2}).workers(); got != 1 {
		t.Errorf("negative Parallelism -> %d workers, want 1 (fail safe)", got)
	}
}
