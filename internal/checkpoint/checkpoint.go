// Package checkpoint implements MCR's incremental pre-copy checkpoint
// engine: the new layer between the memory substrate (internal/mem) and
// the transfer engine (internal/trace) that takes state transfer off the
// downtime-critical path.
//
// While the old version keeps serving traffic, a snapshotter repeatedly
// runs pre-copy epochs, live-migration style: each epoch atomically
// reads-and-clears the soft-dirty page bits of every process, maps the
// dirty pages back to the objects overlapping them (mem.ObjectIndex's
// page buckets), and copies those objects into per-process shadow buffers
// keyed by object identity. The epoch loop converges when the dirty rate
// stabilizes (the writable working set has been reached — further epochs
// cannot shrink it) or a bounded epoch count is hit.
//
// At quiescence, the transfer phase consults the checkpoint through two
// queries: EverDirtyPages (the pages whose bits epochs consumed, so the
// dirty-object set stays identical to a no-checkpoint run) and Shadow
// (the pre-copied bytes of one object). An object whose pages carry no
// soft-dirty bit at transfer time was not written after the epoch that
// captured its shadow — the shadow is bit-identical to live memory and
// the downtime copy can skip the locked read of the live address space.
// Downtime therefore scales with the dirty working set, not the heap.
//
// Consumed-bit accounting lives in the address space itself (a per-page
// "consumed" mark set by ReadAndClearSoftDirty): a fork clones it
// together with the data and the soft-dirty bits, so a child created in
// the middle of a pre-copy run stays exactly accountable with no extra
// bookkeeping here. Epochs are speculative: Discard hands every consumed
// bit back (rollback must leave a later, checkpoint-free update attempt
// with the full dirty-since-startup set).
package checkpoint

import (
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/trace"
)

// Options configures a Snapshotter.
type Options struct {
	// MaxEpochs bounds the pre-copy epoch loop (default 8). Pre-copy must
	// terminate even when the write rate never stabilizes.
	MaxEpochs int
	// StableRatio declares convergence when an epoch dirties at least
	// this fraction of the previous epoch's page count (default 0.9):
	// the dirty set has stopped shrinking, so further epochs only burn
	// bandwidth — quiesce now.
	StableRatio float64
	// Interval pauses between epochs so the running version's writes can
	// accumulate (default 0: back-to-back epochs).
	Interval time.Duration
	// NoEpochHistory drops the per-epoch history (Stats.PerEpoch stays
	// empty; the scalar totals still accumulate). The warm-standby daemon
	// sets it: a snapshotter that runs epochs for hours must not grow an
	// unbounded slice that every Stats() copy then drags along.
	NoEpochHistory bool
	// Recorder, when set, receives one flight-recorder span per epoch
	// (dirty-page count attached) on Track. FinalEpoch always emits on
	// the transfer track: the handoff epoch runs in the pipelined
	// engine's old-side goroutine, concurrent with the engine phases.
	Recorder *obs.Recorder
	// Track is the recorder track epoch spans land on (default engine —
	// the in-call pre-copy loop; the warm daemon sets its own track so
	// its epochs nest under pass spans).
	Track string
	// Faults consults the fault-injection plane at the epoch seam
	// (faultinject.PointEpochFail): a firing poisons the snapshotter
	// instead of producing a half-trusted epoch. nil never fires.
	Faults *faultinject.Plane
}

func (o *Options) fill() {
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 8
	}
	if o.StableRatio <= 0 {
		o.StableRatio = 0.9
	}
	if o.Track == "" {
		o.Track = obs.TrackEngine
	}
}

// EpochStats describes one pre-copy epoch.
type EpochStats struct {
	Epoch         int
	DirtyPages    int
	ObjectsCopied int
	BytesCopied   uint64
}

// Stats summarizes a snapshotter run.
type Stats struct {
	Epochs        int
	Converged     bool // dirty rate stabilized or drained (vs epoch bound hit)
	PagesCopied   int  // dirty pages consumed across all epochs
	ObjectsCopied int  // shadow captures (re-captures included)
	BytesCopied   uint64
	PerEpoch      []EpochStats
	// The handoff epoch the pipelined engine runs after quiescence,
	// concurrently with the new version's RESTART phase. Accounted apart
	// from the pre-quiesce loop so the Epochs bound and its per-epoch
	// history keep their meaning.
	FinalRan     bool
	FinalPages   int
	FinalObjects int
	FinalBytes   uint64
}

// Snapshotter is the epoch-based background pre-copier for one running
// (old-version) instance.
type Snapshotter struct {
	inst *program.Instance
	opts Options

	mu        sync.Mutex
	procs     map[program.ProcKey]*ProcShadow
	stats     Stats
	discarded bool
	err       error // poisoned: shadows cannot be trusted (failed epoch / shot daemon pass)
}

// New builds a snapshotter over the running instance. Epochs start when
// Run (or Epoch) is called; the instance keeps serving throughout.
func New(inst *program.Instance, opts Options) *Snapshotter {
	opts.fill()
	return &Snapshotter{
		inst:  inst,
		opts:  opts,
		procs: make(map[program.ProcKey]*ProcShadow),
	}
}

// Run executes pre-copy epochs until convergence or the epoch bound and
// returns the final statistics. Safe to call while the instance's threads
// run: bit reads/clears and object copies synchronize through each
// address space's lock.
func (s *Snapshotter) Run() Stats {
	prev := -1
	for i := 0; i < s.opts.MaxEpochs; i++ {
		es := s.Epoch()
		if es.DirtyPages == 0 {
			s.setConverged()
			break
		}
		if prev >= 0 && float64(es.DirtyPages) >= s.opts.StableRatio*float64(prev) {
			// Dirty rate stabilized: this is the writable working set.
			s.setConverged()
			break
		}
		prev = es.DirtyPages
		if s.opts.Interval > 0 && i+1 < s.opts.MaxEpochs {
			time.Sleep(s.opts.Interval)
		}
	}
	return s.Stats()
}

// Epoch runs one pre-copy epoch over every live process: read-and-clear
// its soft-dirty bits, then shadow the objects overlapping the dirty
// pages.
func (s *Snapshotter) Epoch() EpochStats {
	sp := s.opts.Recorder.Span(s.opts.Track, obs.PhaseEpoch)
	es := s.epoch()
	sp.EndArg("dirty_pages", int64(es.DirtyPages))
	s.mu.Lock()
	s.stats.Epochs++
	es.Epoch = s.stats.Epochs
	s.stats.PagesCopied += es.DirtyPages
	s.stats.ObjectsCopied += es.ObjectsCopied
	s.stats.BytesCopied += es.BytesCopied
	if !s.opts.NoEpochHistory {
		s.stats.PerEpoch = append(s.stats.PerEpoch, es)
	}
	s.mu.Unlock()
	return es
}

// FinalEpoch runs the handoff epoch over the quiesced instance: with no
// thread left running, everything still dirty is consumed and shadowed in
// one pass, after which the entire downtime copy can be served from
// shadows. The pipelined engine runs it concurrently with the new
// version's RESTART phase — the residual live copy shrinks while v2
// boots. Recorded in the Final* stats, not the epoch-loop history.
func (s *Snapshotter) FinalEpoch() EpochStats {
	sp := s.opts.Recorder.Span(obs.TrackTransfer, obs.PhaseHandoff)
	es := s.epoch()
	sp.EndArg("dirty_pages", int64(es.DirtyPages))
	s.mu.Lock()
	s.stats.FinalRan = true
	s.stats.FinalPages += es.DirtyPages
	s.stats.FinalObjects += es.ObjectsCopied
	s.stats.FinalBytes += es.BytesCopied
	s.mu.Unlock()
	return es
}

// epoch is the shared pass: consume every process's soft-dirty bits and
// shadow the objects on the consumed pages.
func (s *Snapshotter) epoch() EpochStats {
	es := EpochStats{}
	// Injected epoch failure: the pass dies before consuming anything,
	// and the snapshotter is poisoned — an epoch that failed partway
	// cannot vouch for which shadows are current, so the update that
	// adopts this checkpoint must abort rather than trust them.
	if err := s.opts.Faults.Check(faultinject.PointEpochFail); err != nil {
		s.fail(err)
		return es
	}
	for _, p := range s.inst.Procs() {
		pages := p.Space().ReadAndClearSoftDirty()
		if len(pages) == 0 {
			continue
		}
		ps := s.shadowOf(p)
		if ps == nil {
			// Discarded concurrently — after this epoch's read-and-clear,
			// so Discard's own restore pass ran too early to see these
			// bits. Hand them back here: anything Discard already
			// restored is no longer marked consumed, so this only
			// returns what this epoch just took.
			p.Space().RestoreSoftDirty()
			break
		}
		es.DirtyPages += len(pages)
		for _, o := range p.Index().OnPages(pages) {
			buf := make([]byte, o.Size)
			if err := p.Space().ReadAt(o.Addr, buf); err != nil {
				// Raced with an unmap: the object cannot be shadowed, and
				// its pages stay consumed, so the transfer will take the
				// live path for whatever lives there by then.
				continue
			}
			ps.put(o, buf)
			es.ObjectsCopied++
			es.BytesCopied += o.Size
		}
	}
	return es
}

// Stats returns a snapshot of the accumulated statistics.
func (s *Snapshotter) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.PerEpoch = append([]EpochStats(nil), s.stats.PerEpoch...)
	return out
}

func (s *Snapshotter) setConverged() {
	s.mu.Lock()
	s.stats.Converged = true
	s.mu.Unlock()
}

// fail poisons the snapshotter: the first failure sticks.
func (s *Snapshotter) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// Err reports whether the snapshotter is poisoned — some epoch or daemon
// pass failed, so the shadow set's currency can no longer be vouched
// for. An engine adopting a poisoned checkpoint must roll back; Discard
// still restores every consumed bit as usual.
func (s *Snapshotter) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// ProcShadow returns the checkpoint state of the process with the given
// key, or nil if the instance has no such process (or the checkpoint was
// discarded). A process the epochs never shadowed still answers: its
// consumed-page set lives in its own address space (inherited through
// fork), and its shadow table is simply empty, so every dirty object
// takes the live path.
func (s *Snapshotter) ProcShadow(key program.ProcKey) *ProcShadow {
	p, ok := s.inst.ProcByKey(key)
	if !ok {
		return nil
	}
	return s.shadowOf(p)
}

// Shadows returns the resolver callers plug into trace.Options.Shadows.
// It exists so every caller gets the typed-nil guard right: ProcShadow
// returns a concrete *ProcShadow, and wrapping a nil one in the
// ShadowReader interface directly would make an unknown process look like
// it has a checkpoint.
func (s *Snapshotter) Shadows() func(program.ProcKey) trace.ShadowReader {
	return func(key program.ProcKey) trace.ShadowReader {
		if ps := s.ProcShadow(key); ps != nil {
			return ps
		}
		return nil
	}
}

func (s *Snapshotter) shadowOf(p *program.Proc) *ProcShadow {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.discarded {
		return nil
	}
	if ps, ok := s.procs[p.Key()]; ok {
		return ps
	}
	ps := &ProcShadow{
		space:   p.Space(),
		shadows: make(map[*mem.Object][]byte),
	}
	s.procs[p.Key()] = ps
	return ps
}

// Discard abandons the checkpoint: every consumed dirty bit is handed
// back to its process's address space (so a subsequent checkpoint-free
// transfer still sees the full dirty-since-startup set) and all shadow
// buffers are released. Called on rollback, and after commit for cleanup
// (restoring bits of a terminated instance is harmless).
func (s *Snapshotter) Discard() {
	s.mu.Lock()
	if s.discarded {
		s.mu.Unlock()
		return
	}
	s.discarded = true
	procs := s.procs
	s.procs = make(map[program.ProcKey]*ProcShadow)
	s.mu.Unlock()
	for _, ps := range procs {
		ps.drop()
	}
	// Restore via the live process list, not the shadow table: a child
	// forked after the last epoch carries inherited consumed bits even
	// though no ProcShadow was ever created for it.
	for _, p := range s.inst.Procs() {
		p.Space().RestoreSoftDirty()
	}
}

// Discarded reports whether Discard has run — i.e. whether every dirty
// bit this snapshotter consumed has been handed back. The canary fault
// tests use it to pin down the consumed-bit restore contract the
// adoptable window relies on.
func (s *Snapshotter) Discarded() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.discarded
}

// ProcShadow holds one process's checkpoint state: its address space
// (which carries the consumed-page accounting) and the pre-copied
// contents of the objects that sat on dirty pages, keyed by object
// identity. It satisfies trace.ShadowReader.
type ProcShadow struct {
	space *mem.AddressSpace

	mu      sync.RWMutex
	shadows map[*mem.Object][]byte
}

func (ps *ProcShadow) put(o *mem.Object, buf []byte) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.shadows != nil {
		ps.shadows[o] = buf
	}
}

func (ps *ProcShadow) drop() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.shadows = nil
}

// EverDirtyPages returns, in ascending order, every page whose soft-dirty
// bit a pre-copy epoch read-and-cleared. The transfer unions these with
// the pages still dirty at quiescence to recover the exact dirty set a
// checkpoint-free run would have seen.
func (ps *ProcShadow) EverDirtyPages() []mem.Addr {
	return ps.space.ConsumedDirtyPages()
}

// Shadow returns the pre-copied contents of o from its latest capture.
// The caller must verify currency (no soft-dirty bit on any of o's pages)
// before serving it in place of live memory.
func (ps *ProcShadow) Shadow(o *mem.Object) ([]byte, bool) {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	buf, ok := ps.shadows[o]
	return buf, ok
}

// Invalidate drops any shadow captured for o. The transfer calls it when
// o's page frames are adopted into the new address space: the shadow
// described frames this space no longer owns, and must never be served
// again (not even after a canary copy-back, whose bytes are re-captured by
// the next checkpoint from scratch). Nil-receiver safe.
func (ps *ProcShadow) Invalidate(o *mem.Object) {
	if ps == nil {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	delete(ps.shadows, o)
}

// ShadowObjects returns the number of live shadow captures.
func (ps *ProcShadow) ShadowObjects() int {
	ps.mu.RLock()
	defer ps.mu.RUnlock()
	return len(ps.shadows)
}
