package checkpoint

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/types"
)

// fastDaemon starts a daemon with a tight interval so tests converge
// quickly; the duty-cycle backpressure still applies.
func fastDaemon(inst *program.Instance) *Daemon {
	return StartDaemon(inst, trace.NewWarmAnalysis(types.DefaultPolicy(), nil),
		DaemonOptions{Interval: 100 * time.Microsecond})
}

// TestDaemonKeepsShadowsCurrent is the warm-standby core contract: after
// post-startup writes, the daemon catches up on its own (no epochs driven
// by the caller), every dirty page is consumed into shadows, the warm
// analysis covers every process, and a transfer served at quiesce-time is
// fully shadow-served and bit-identical to a checkpoint-free run.
func TestDaemonKeepsShadowsCurrent(t *testing.T) {
	for _, withChild := range []bool{false, true} {
		withChild := withChild
		name := "single-proc"
		if withChild {
			name = "multi-proc"
		}
		t.Run(name, func(t *testing.T) {
			v1 := startInst(t, synthVersion(0, withChild), program.Options{}, nil, nil)
			defer v1.Terminate()

			d := fastDaemon(v1)
			dirtyHeap(t, v1, 1, 0)
			if !d.WaitCurrent(10 * time.Second) {
				t.Fatalf("daemon never caught up: %+v (lag %d)", d.Stats(), d.ShadowLag())
			}
			d.Stop()
			if lag := d.ShadowLag(); lag != 0 {
				t.Fatalf("shadow lag %d after WaitCurrent", lag)
			}
			st := d.Stats()
			if st.Epochs == 0 || st.PagesCopied == 0 {
				t.Fatalf("no warm epochs ran: %+v", st)
			}
			// A daemon-lifetime snapshotter must not accumulate per-epoch
			// history (it would grow without bound across the serving
			// window); the scalar totals still count.
			if ss := d.Snapshot().Stats(); len(ss.PerEpoch) != 0 || ss.Epochs == 0 {
				t.Errorf("daemon snapshotter history: %d entries, %d epochs", len(ss.PerEpoch), ss.Epochs)
			}
			if got, want := d.Warm().Entries(), len(v1.Procs()); got != want {
				t.Fatalf("warm analysis covers %d procs, want %d", got, want)
			}

			snap := d.Snapshot()
			shadowed, sInst := transferInto(t, v1, withChild, 1, snap)
			defer sInst.Terminate()
			if shadowed.BytesLive != 0 {
				t.Errorf("BytesLive = %d, want 0 (idle instance fully shadowed)", shadowed.BytesLive)
			}
			if shadowed.BytesFromShadow == 0 {
				t.Error("nothing served from shadows")
			}
			snap.Discard()
			baseline, bInst := transferInto(t, v1, withChild, 1, nil)
			defer bInst.Terminate()
			if shadowed.BytesTransferred != baseline.BytesTransferred ||
				shadowed.ObjectsTransferred != baseline.ObjectsTransferred {
				t.Errorf("warm transfer scope diverged: %+v vs %+v", shadowed, baseline)
			}
			compareInstances(t, "warm vs baseline", sInst, bInst)
		})
	}
}

// TestDaemonForkRace forks a child while the daemon is consuming the
// parent's bits and keeps writing to the child afterwards: the daemon
// must pick the child up (shadows and warm analysis both), and the
// consumed-bit accounting must stay exact through the fork.
func TestDaemonForkRace(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	d := fastDaemon(v1)
	dirtyHeap(t, v1, 1, 0)

	if err := v1.RunHandler(func(th *program.Thread) error {
		_, err := th.ForkProc("late_child", func(ct *program.Thread) error {
			ct.Enter("late_child")
			defer ct.Exit()
			return idle(ct)
		})
		return err
	}); err != nil {
		t.Fatalf("fork: %v", err)
	}
	if _, err := v1.Barrier().WaitQuiesced(5 * time.Second); err != nil {
		t.Fatalf("child did not quiesce: %v", err)
	}
	var child *program.Proc
	for _, p := range v1.Procs() {
		if p.Key() != program.RootKey {
			child = p
		}
	}
	if child == nil {
		t.Fatal("no child process")
	}
	// Post-fork writes land only in the child.
	dirtyHeap(t, v1, 2, 1)

	if !d.WaitCurrent(10 * time.Second) {
		t.Fatalf("daemon never caught up after fork: %+v (lag %d)", d.Stats(), d.ShadowLag())
	}
	d.Stop()
	if got, want := d.Warm().Entries(), len(v1.Procs()); got != want {
		t.Fatalf("warm analysis covers %d procs, want %d (child included)", got, want)
	}
	if child.Space().SoftDirtyCount() != 0 {
		t.Errorf("child still has %d unshadowed dirty pages", child.Space().SoftDirtyCount())
	}
	if child.Space().ConsumedCount() == 0 {
		t.Error("child has no consumed pages despite post-fork writes")
	}
	// Discard restores the exact dirty-since-startup union in the child.
	d.Snapshot().Discard()
	if got := child.Space().ConsumedDirtyPages(); len(got) != 0 {
		t.Errorf("consumed marks survived discard: %v", got)
	}
	if got := child.Space().SoftDirtyCount(); got == 0 {
		t.Error("discard restored no soft-dirty pages in the child")
	}
}

// TestDaemonDisarmMidEpoch stops the daemon while a writer keeps it busy:
// Stop must return promptly with the snapshotter in a consistent state —
// every page the writer dirtied is either still soft-dirty or consumed
// (nothing lost), and Discard restores the full union.
func TestDaemonDisarmMidEpoch(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	root := v1.Root()
	objs := heapObjs(root)

	d := fastDaemon(v1)
	stop := make(chan struct{})
	done := make(chan struct{})
	touched := make(map[mem.Addr]bool)
	go func() {
		defer close(done)
		var buf [8]byte
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := objs[i%len(objs)]
			for j := range buf {
				buf[j] = 0x80 | byte((i+j)&0x7f)
			}
			off := uint64(0)
			if o.Type == nil {
				off = o.Size - 8
			}
			if root.Space().WriteAt(o.Addr+mem.Addr(off), buf[:]) == nil {
				touched[(o.Addr+mem.Addr(off))&^mem.Addr(mem.PageSize-1)] = true
			}
		}
	}()
	// Wait until warm epochs demonstrably overlap the writes, then disarm.
	deadline := time.Now().Add(10 * time.Second)
	for d.Stats().Epochs == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	d.Stop() // disarm mid-traffic
	d.Stop() // idempotent
	close(stop)
	<-done

	if d.Stats().Epochs == 0 {
		t.Fatalf("no epoch ran under traffic: %+v", d.Stats())
	}
	// Nothing lost: every touched page is soft-dirty or consumed.
	space := root.Space()
	dirty := make(map[mem.Addr]bool)
	for _, pb := range space.SoftDirtyPages() {
		dirty[pb] = true
	}
	for _, pb := range space.ConsumedDirtyPages() {
		dirty[pb] = true
	}
	for pb := range touched {
		if !dirty[pb] {
			t.Errorf("page %#x written but neither dirty nor consumed after disarm", pb)
		}
	}
	// Discard restores the union as plain soft-dirty.
	d.Snapshot().Discard()
	after := make(map[mem.Addr]bool)
	for _, pb := range space.SoftDirtyPages() {
		after[pb] = true
	}
	if !reflect.DeepEqual(dirty, after) {
		t.Errorf("discard after disarm did not restore the dirty union: %d vs %d pages",
			len(after), len(dirty))
	}
}

// TestDaemonBackpressure pins the pacing contract: with a duty cycle of
// 25%, warm work cannot occupy the wall clock — an idle window must see
// far fewer passes than back-to-back execution would produce, and an
// up-to-date instance skips the shadow epoch entirely.
func TestDaemonBackpressure(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	d := StartDaemon(v1, trace.NewWarmAnalysis(types.DefaultPolicy(), nil),
		DaemonOptions{Interval: 10 * time.Millisecond})
	time.Sleep(25 * time.Millisecond)
	d.Stop()
	st := d.Stats()
	if st.Passes == 0 {
		t.Fatal("daemon never passed")
	}
	if st.Passes > 5 {
		t.Errorf("%d passes in 25ms at a 10ms interval: pacing broken", st.Passes)
	}
	if st.Epochs > 1 {
		// Startup leaves no dirty pages; at most the first pass could see
		// any (there are none here).
		t.Errorf("idle instance ran %d shadow epochs, want 0", st.Epochs)
	}
	if st.Skipped == 0 {
		t.Errorf("idle passes were not skipped: %+v", st)
	}
}

// TestDaemonDutyAccounting covers the overhead-curve counters: work and
// pause time both accumulate, the measured duty fraction respects the
// configured bound (within scheduling slack), and a heavy pass under a
// tight bound registers yields (backpressure-stretched pauses).
func TestDaemonDutyAccounting(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	d := StartDaemon(v1, trace.NewWarmAnalysis(types.DefaultPolicy(), nil),
		DaemonOptions{Interval: 50 * time.Microsecond, DutyCycle: 0.10})
	if d.DutyCycle() != 0.10 {
		t.Fatalf("DutyCycle() = %v", d.DutyCycle())
	}
	// Keep the instance dirty so passes do real epoch + analysis work and
	// the backpressure has something to stretch.
	deadline := time.Now().Add(30 * time.Millisecond)
	for time.Now().Before(deadline) {
		dirtyHeap(t, v1, 1, 0)
		time.Sleep(500 * time.Microsecond)
	}
	d.Stop()
	st := d.Stats()
	if st.Passes == 0 || st.WorkTime == 0 || st.PauseTime == 0 {
		t.Fatalf("duty accounting empty: %+v", st)
	}
	if st.Yields == 0 {
		t.Errorf("no yields under a 0.10 duty bound with dirty passes: %+v", st)
	}
	// The bound is enforced per pause, so the aggregate fraction should
	// not exceed it by more than scheduling noise.
	if f := st.DutyFraction(); f > 0.35 {
		t.Errorf("measured duty %.2f far above the 0.10 bound: %+v", f, st)
	}
}
