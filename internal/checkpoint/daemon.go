package checkpoint

import (
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/trace"
)

// DaemonOptions configures the warm-standby readiness daemon.
type DaemonOptions struct {
	// Interval is the base pause between warm passes (default 2ms). Each
	// pass is one staleness poll, at most one pre-copy epoch, and one
	// incremental analysis refresh.
	Interval time.Duration
	// DutyCycle bounds the fraction of wall clock the daemon may spend
	// doing warm work (default 0.25): after a pass that took d, the next
	// pass starts no sooner than d*(1-DutyCycle)/DutyCycle later. This is
	// the backpressure that keeps warm epochs from starving the serving
	// workload — a heavy pass automatically stretches the pause.
	DutyCycle float64
	// MinDirtyPages is the staleness threshold below which a pass skips
	// the shadow epoch (default 1: any dirty page triggers one). The
	// poll uses the count-only soft-dirty query, so an up-to-date
	// instance costs one counter sweep per pass.
	MinDirtyPages int
	// Recorder, when set, records every pass and backpressure yield as
	// spans on the daemon track (epochs nest inside passes) and unifies
	// the pass/epoch/page tallies into the metrics registry — the
	// alignment data the spike trace correlates workload p99 against.
	Recorder *obs.Recorder
	// Faults consults the fault-injection plane at the pass seam
	// (faultinject.PointDaemonStall) and, through the snapshotter, at the
	// epoch seam. nil never fires.
	Faults *faultinject.Plane
}

func (o *DaemonOptions) fill() {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.DutyCycle <= 0 || o.DutyCycle > 1 {
		o.DutyCycle = 0.25
	}
	if o.MinDirtyPages <= 0 {
		o.MinDirtyPages = 1
	}
}

// DaemonStats summarizes a daemon's warm work so far.
type DaemonStats struct {
	Passes      int // warm passes (poll + optional epoch + refresh)
	Epochs      int // shadow epochs run (staleness at or above threshold)
	Skipped     int // passes that found the shadows current
	PagesCopied int // dirty pages consumed by warm epochs
	Reanalyzed  int // warm-analysis recomputations (per-process)
	Revalidated int // processes revalidated for free against the deltas
	Dropped     int // entries dropped for exited processes
	Errors      int // analysis failures (entry invalidated, daemon continues)

	// Duty-cycle accounting, the raw material of the overhead curve:
	// WorkTime is wall clock spent inside passes, PauseTime wall clock
	// yielded back to the serving workload between them, and Yields
	// counts the pauses the backpressure stretched beyond the base
	// interval (a heavy pass forcing extra uncontended time). The
	// measured duty fraction is WorkTime/(WorkTime+PauseTime), bounded
	// by DaemonOptions.DutyCycle.
	WorkTime  time.Duration
	PauseTime time.Duration
	Yields    int
}

// DutyFraction returns the measured fraction of wall clock the daemon
// spent doing warm work (0 if it never ran).
func (s DaemonStats) DutyFraction() float64 {
	total := s.WorkTime + s.PauseTime
	if total <= 0 {
		return 0
	}
	return float64(s.WorkTime) / float64(total)
}

// Daemon is the warm-standby readiness loop: between updates it keeps a
// long-lived Snapshotter's per-process shadows continuously current
// against the soft-dirty bits and a trace.WarmAnalysis incrementally
// revalidated against the memory delta counters, so an update can begin
// at quiescence with the pre-quiesce work already done. The engine stops
// the daemon when an update starts and adopts its snapshotter and
// analysis; Discard semantics are unchanged — a rollback hands every
// consumed soft-dirty bit back exactly as with in-call pre-copy.
type Daemon struct {
	inst *program.Instance
	snap *Snapshotter
	warm *trace.WarmAnalysis
	opts DaemonOptions

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	rec              *obs.Recorder
	cPasses, cEpochs *obs.Counter
	cPages, cYields  *obs.Counter

	mu    sync.Mutex
	stats DaemonStats
}

// StartDaemon builds a snapshotter over the running instance and starts
// the warm loop. The instance keeps serving throughout; epochs and
// analysis reads synchronize through the address-space locks.
func StartDaemon(inst *program.Instance, warm *trace.WarmAnalysis, opts DaemonOptions) *Daemon {
	opts.fill()
	d := &Daemon{
		inst: inst,
		snap: New(inst, Options{NoEpochHistory: true, Recorder: opts.Recorder, Track: obs.TrackDaemon, Faults: opts.Faults}),
		warm: warm,
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		rec:  opts.Recorder,
	}
	m := opts.Recorder.Metrics()
	d.cPasses = m.Counter("daemon.passes")
	d.cEpochs = m.Counter("daemon.epochs")
	d.cPages = m.Counter("daemon.pages_copied")
	d.cYields = m.Counter("daemon.yields")
	go d.loop()
	return d
}

func (d *Daemon) loop() {
	defer close(d.done)
	for {
		select {
		case <-d.stop:
			return
		default:
		}
		t0 := time.Now()
		psp := d.rec.Span(obs.TrackDaemon, obs.PhasePass)
		d.pass()
		psp.End()
		took := time.Since(t0)
		// Backpressure: a pass that took d leaves the workload at least
		// d*(1-duty)/duty of uncontended time before the next one.
		pause := d.opts.Interval
		yielded := false
		if min := time.Duration(float64(took) * (1 - d.opts.DutyCycle) / d.opts.DutyCycle); min > pause {
			pause = min
			yielded = true
		}
		d.mu.Lock()
		d.stats.WorkTime += took
		if yielded {
			d.stats.Yields++
			d.cYields.Add(1)
		}
		d.mu.Unlock()
		pauseStart := time.Now()
		ysp := d.rec.Span(obs.TrackDaemon, obs.PhaseYield)
		stopped := false
		select {
		case <-d.stop:
			stopped = true
		case <-time.After(pause):
		}
		ysp.End()
		d.mu.Lock()
		d.stats.PauseTime += time.Since(pauseStart)
		d.mu.Unlock()
		if stopped {
			return
		}
	}
}

// pass runs one warm iteration: poll staleness, run a shadow epoch if the
// dirty set crossed the threshold, then refresh the warm analysis.
func (d *Daemon) pass() {
	// Injected stall: the pass hangs until the daemon is stopped (the
	// update's detach join releases it via d.stop) or the plane's stalls
	// are released. A pass that hung and had to be shot cannot vouch for
	// shadow currency, so it poisons the snapshotter — the update that
	// adopts this daemon's checkpoint aborts instead of trusting it.
	if err := d.opts.Faults.Stall(faultinject.PointDaemonStall, d.stop); err != nil {
		d.snap.fail(err)
		d.mu.Lock()
		d.stats.Errors++
		d.mu.Unlock()
		return
	}
	stale := d.ShadowLag()
	var es EpochStats
	ranEpoch := false
	if stale >= d.opts.MinDirtyPages {
		es = d.snap.Epoch()
		ranEpoch = true
	}
	rs := d.warm.Refresh(d.inst)

	d.mu.Lock()
	d.stats.Passes++
	d.cPasses.Add(1)
	if ranEpoch {
		d.stats.Epochs++
		d.stats.PagesCopied += es.DirtyPages
		d.cEpochs.Add(1)
		d.cPages.Add(int64(es.DirtyPages))
	} else {
		d.stats.Skipped++
	}
	d.stats.Reanalyzed += rs.Reanalyzed
	d.stats.Revalidated += rs.Revalidated
	d.stats.Dropped += rs.Dropped
	d.stats.Errors += rs.Errors
	d.mu.Unlock()
}

// Stop halts the warm loop and waits for any in-flight pass to finish.
// Safe to call more than once and safe mid-epoch: the loop only observes
// the signal between passes, so the snapshotter and analysis are always
// left in a consistent state for the engine to adopt. Stop does NOT
// discard the snapshotter — consumed-bit ownership transfers to the
// caller (the update engine defers Discard itself).
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Snapshot returns the daemon's long-lived snapshotter. Meaningful to
// adopt only after Stop.
func (d *Daemon) Snapshot() *Snapshotter { return d.snap }

// Warm returns the daemon's warm analysis. Meaningful to adopt only
// after Stop.
func (d *Daemon) Warm() *trace.WarmAnalysis { return d.warm }

// DutyCycle returns the configured duty-cycle bound.
func (d *Daemon) DutyCycle() float64 { return d.opts.DutyCycle }

// Stats returns a snapshot of the daemon's accumulated statistics.
func (d *Daemon) Stats() DaemonStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Current reports instantaneous readiness: the shadow lag is below the
// epoch threshold and every live process's warm analysis validates
// against the delta counters right now. Both probes are counter
// comparisons — no copy or analysis work — so Current is cheap to poll
// and cannot return stale truth the way a last-pass flag would (a write
// landing after a pass flips it back to false immediately).
func (d *Daemon) Current() bool {
	return d.ShadowLag() < d.opts.MinDirtyPages && !d.warm.Stale(d.inst)
}

// WaitCurrent blocks until the daemon reports Current (the shadows and
// analysis have caught up with the workload) or the timeout elapses.
func (d *Daemon) WaitCurrent(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if d.Current() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		select {
		case <-d.done:
			return d.Current()
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// ShadowLag returns the instantaneous shadow currency gap: the number of
// soft-dirty pages across all live processes that no epoch has consumed
// yet (0 = every post-startup write is shadowed). Uses the count-only
// staleness query, so polling it is cheap.
func (d *Daemon) ShadowLag() int {
	n := 0
	for _, p := range d.inst.Procs() {
		n += p.Space().SoftDirtyCount()
	}
	return n
}

// ShadowCoverage returns how many pages the daemon's epochs have
// consumed into shadows so far (the coverage half of the staleness
// query, next to ShadowLag's currency half).
func (d *Daemon) ShadowCoverage() int {
	n := 0
	for _, p := range d.inst.Procs() {
		n += p.Space().ConsumedCount()
	}
	return n
}
