package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/trace"
	"repro/internal/types"
)

// --- synthetic program ------------------------------------------------------
//
// A deterministic heap: a precisely traced linked list of typed nodes plus
// a chain of opaque blobs linked by hidden pointers at word 0 (payload in
// the remaining words), optionally duplicated into a forked child process.
// Post-startup "traffic" is modelled by dirtyHeap, which rewrites value
// words with patterns whose top byte is >= 0x80 so they can never alias a
// mapped address (the conservative scan must not follow them).

const (
	synthNodes = 120
	synthBlobs = 30
)

func synthVersion(seq int, withChild bool) *program.Version {
	reg := types.NewRegistry()
	node := &types.Type{Name: "node_t", Kind: types.KindStruct}
	node.Fields = []types.Field{
		{Name: "value", Offset: 0, Type: types.Scalar(types.KindInt64)},
		{Name: "next", Offset: 8, Type: types.PointerTo(node)},
	}
	node.Size, node.Align = 16, 8
	reg.Define(node)
	main := func(t *program.Thread) error {
		t.Enter("main")
		defer t.Exit()
		if err := t.Call("synth_init", func() error {
			return buildHeap(t, synthNodes, synthBlobs)
		}); err != nil {
			return err
		}
		if withChild {
			if _, err := t.ForkProc("child_0", func(ct *program.Thread) error {
				ct.Enter("child_0")
				defer ct.Exit()
				if err := ct.Call("child_init", func() error {
					return buildHeap(ct, synthNodes/2, synthBlobs/2)
				}); err != nil {
					return err
				}
				return idle(ct)
			}); err != nil {
				return err
			}
		}
		return idle(t)
	}
	return &program.Version{
		Program: "ckptheap",
		Release: fmt.Sprintf("v%d", seq+1),
		Seq:     seq,
		Types:   reg,
		Globals: []program.GlobalSpec{
			{Name: "list", Type: "node_t"},
			{Name: "anchor", Size: 64},
		},
		Annotations: program.NewAnnotations(),
		Main:        main,
	}
}

func idle(t *program.Thread) error {
	return t.Loop("synth_loop", func() error {
		if err := t.IdleQP("idle@synth_loop"); err != nil {
			if errors.Is(err, program.ErrStopped) {
				return program.ErrLoopExit
			}
			return err
		}
		return nil
	})
}

func buildHeap(t *program.Thread, nodes, blobs int) error {
	p := t.Proc()
	prev := p.MustGlobal("list")
	for i := 0; i < nodes; i++ {
		n, err := t.Malloc("node_t")
		if err != nil {
			return err
		}
		if err := p.WriteField(n, "value", uint64(i)*7+1); err != nil {
			return err
		}
		if err := p.WriteField(prev, "next", uint64(n.Addr)); err != nil {
			return err
		}
		prev = n
	}
	var first, last *mem.Object
	for i := 0; i < blobs; i++ {
		sz := uint64(64 + (i%8)*32)
		b, err := t.MallocBytes(sz)
		if err != nil {
			return err
		}
		fill := bytes.Repeat([]byte{0xA5}, int(sz))
		if err := p.WriteBytes(b, 0, fill); err != nil {
			return err
		}
		if last != nil {
			if err := p.WriteWordAt(last, 0, uint64(b.Addr)); err != nil {
				return err
			}
		} else {
			first = b
		}
		last = b
	}
	return p.WriteWordAt(p.MustGlobal("anchor"), 0, uint64(first.Addr))
}

func startInst(t *testing.T, v *program.Version, opts program.Options,
	plan map[mem.PlanKey]mem.Addr, reserve []*mem.Object) *program.Instance {
	t.Helper()
	inst, err := program.NewInstance(v, kernel.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		inst.Root().Heap().SetPlacementPlan(plan)
	}
	for _, o := range reserve {
		if _, err := inst.Root().Heap().AllocAt(o.Addr, o.Size, nil, o.Site); err != nil {
			t.Fatalf("pre-reserve %s: %v", o, err)
		}
	}
	if err := inst.Start(); err != nil {
		t.Fatal(err)
	}
	if err := inst.WaitStartup(10 * time.Second); err != nil {
		t.Fatalf("startup %s: %v", v, err)
	}
	inst.CompleteStartup()
	return inst
}

func heapObjs(p *program.Proc) []*mem.Object {
	var out []*mem.Object
	for _, o := range p.Index().All() {
		if o.Kind == mem.ObjHeap {
			out = append(out, o)
		}
	}
	return out
}

// dirtyHeap rewrites one value word of the heap objects sitting on every
// `every`-th page, in every process: typed nodes at their value field,
// opaque blobs at their last word (links live at word 0). Selecting by
// page keeps the residual dirty set page-sparse — the unit the soft-dirty
// filter (and therefore shadow currency) works at. Patterns depend on
// (step, object index) so distinct phases leave distinct bits, and every
// byte has the top bit set so no payload word aliases a mapped address.
func dirtyHeap(t *testing.T, inst *program.Instance, every, step int) {
	t.Helper()
	for _, p := range inst.Procs() {
		for i, o := range heapObjs(p) {
			if (uint64(o.Addr)>>mem.PageShift)%uint64(every) != 0 {
				continue
			}
			off := uint64(0)
			if o.Type == nil {
				off = o.Size - 8
			}
			var buf [8]byte
			for j := range buf {
				buf[j] = 0x80 | byte((step*31+i*7+j)&0x7f)
			}
			if err := p.Space().WriteAt(o.Addr+mem.Addr(off), buf[:]); err != nil {
				t.Fatalf("dirty %s: %v", o, err)
			}
		}
	}
}

// transferInto analyzes v1 and transfers it into a freshly started new
// version, optionally consulting the snapshotter's shadows.
func transferInto(t *testing.T, v1 *program.Instance, withChild bool, par int,
	snap *Snapshotter) (trace.Stats, *program.Instance) {
	t.Helper()
	analyses, err := trace.AnalyzeInstance(v1, types.DefaultPolicy(), nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, reserve, pinned := trace.CombinedPlacement(analyses)
	v2 := startInst(t, synthVersion(1, withChild),
		program.Options{PinnedStatics: pinned}, plan, reserve)
	opts := trace.Options{
		Policy:      types.DefaultPolicy(),
		Parallelism: par,
	}
	if snap != nil {
		opts.Shadows = snap.Shadows()
	}
	stats, err := trace.TransferInstance(v1, v2, analyses, opts)
	if err != nil {
		v2.Terminate()
		t.Fatalf("transfer (parallelism=%d, precopy=%v): %v", par, snap != nil, err)
	}
	return stats, v2
}

// compareInstances asserts two new-version instances are bit-identical:
// same processes, same object universes, same memory contents.
func compareInstances(t *testing.T, label string, a, b *program.Instance) {
	t.Helper()
	aprocs := a.Procs()
	if len(aprocs) != len(b.Procs()) {
		t.Fatalf("%s: proc count %d vs %d", label, len(aprocs), len(b.Procs()))
	}
	for _, ap := range aprocs {
		bp, ok := b.ProcByKey(ap.Key())
		if !ok {
			t.Fatalf("%s: proc %s missing", label, ap.Key())
		}
		aobjs, bobjs := ap.Index().All(), bp.Index().All()
		if len(aobjs) != len(bobjs) {
			t.Fatalf("%s: proc %s object count %d vs %d", label, ap.Key(), len(aobjs), len(bobjs))
		}
		for i, ao := range aobjs {
			bo := bobjs[i]
			if ao.Addr != bo.Addr || ao.Size != bo.Size || ao.Kind != bo.Kind {
				t.Fatalf("%s: proc %s object %d diverged: %s vs %s", label, ap.Key(), i, ao, bo)
			}
			abuf := make([]byte, ao.Size)
			bbuf := make([]byte, bo.Size)
			if err := ap.Space().ReadAt(ao.Addr, abuf); err != nil {
				t.Fatal(err)
			}
			if err := bp.Space().ReadAt(bo.Addr, bbuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(abuf, bbuf) {
				t.Fatalf("%s: proc %s: contents of %s differ", label, ap.Key(), ao)
			}
		}
	}
}

// --- tests ------------------------------------------------------------------

// TestPrecopyBitIdentical is the tentpole acceptance test: after pre-copy
// epochs interleaved with further dirtying, a shadow-consulting transfer
// must produce the same transferred-object set and bit-identical new
// instances as a checkpoint-free transfer — at Parallelism 1 and N — while
// serving a substantial share of the copied bytes from shadows.
func TestPrecopyBitIdentical(t *testing.T) {
	for _, withChild := range []bool{false, true} {
		withChild := withChild
		name := "single-proc"
		if withChild {
			name = "multi-proc"
		}
		t.Run(name, func(t *testing.T) {
			v1 := startInst(t, synthVersion(0, withChild), program.Options{}, nil, nil)
			defer v1.Terminate()

			snap := New(v1, Options{MaxEpochs: 8})
			dirtyHeap(t, v1, 1, 0) // everything written since startup
			snap.Epoch()
			dirtyHeap(t, v1, 4, 1) // writable working set between epochs
			snap.Epoch()
			dirtyHeap(t, v1, 8, 2) // residual writes after the last epoch

			type result struct {
				stats trace.Stats
				inst  *program.Instance
			}
			pars := []int{1, 4}
			shadowed := make(map[int]result)
			for _, par := range pars {
				stats, inst := transferInto(t, v1, withChild, par, snap)
				defer inst.Terminate()
				if stats.BytesFromShadow == 0 {
					t.Fatalf("par=%d: no bytes served from shadows: %+v", par, stats)
				}
				if stats.BytesFromShadow+stats.BytesLive != stats.BytesTransferred {
					t.Fatalf("par=%d: shadow+live != transferred: %+v", par, stats)
				}
				shadowed[par] = result{stats, inst}
			}
			if !reflect.DeepEqual(shadowed[1].stats, shadowed[4].stats) {
				t.Fatalf("shadowed stats diverged across parallelism:\npar1 %+v\npar4 %+v",
					shadowed[1].stats, shadowed[4].stats)
			}
			compareInstances(t, "shadow par1 vs par4", shadowed[1].inst, shadowed[4].inst)

			// Discard hands the consumed bits back; a checkpoint-free
			// transfer must now see the identical dirty set.
			snap.Discard()
			baseline := make(map[int]result)
			for _, par := range pars {
				stats, inst := transferInto(t, v1, withChild, par, nil)
				defer inst.Terminate()
				if stats.BytesFromShadow != 0 {
					t.Fatalf("baseline par=%d: unexpected shadow bytes: %+v", par, stats)
				}
				baseline[par] = result{stats, inst}
			}
			if !reflect.DeepEqual(baseline[1].stats, baseline[4].stats) {
				t.Fatalf("baseline stats diverged across parallelism:\npar1 %+v\npar4 %+v",
					baseline[1].stats, baseline[4].stats)
			}
			s, b := shadowed[1].stats, baseline[1].stats
			if s.ObjectsDiscovered != b.ObjectsDiscovered ||
				s.ObjectsTransferred != b.ObjectsTransferred ||
				s.ObjectsSkippedClean != b.ObjectsSkippedClean ||
				s.BytesTransferred != b.BytesTransferred {
				t.Fatalf("transfer scope diverged with pre-copy:\nshadowed %+v\nbaseline %+v", s, b)
			}
			compareInstances(t, "shadow vs baseline", shadowed[1].inst, baseline[1].inst)

			if s.ObjectsSkippedClean == 0 || s.ObjectsTransferred == 0 {
				t.Fatalf("degenerate scenario, nothing exercised: %+v", s)
			}
			if s.ShadowFraction() < 0.5 {
				t.Errorf("shadow fraction %.2f too low for a mostly-stable heap: %+v",
					s.ShadowFraction(), s)
			}
		})
	}
}

// TestRunConvergesWhenDrained pins the epoch loop's drain exit: one dirty
// burst is consumed by the first epoch and the second epoch, seeing
// nothing new, converges.
func TestRunConvergesWhenDrained(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	dirtyHeap(t, v1, 1, 0)
	snap := New(v1, Options{MaxEpochs: 8})
	defer snap.Discard()
	st := snap.Run()
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if st.Epochs != 2 || len(st.PerEpoch) != 2 {
		t.Fatalf("expected exactly 2 epochs (burst, drain): %+v", st)
	}
	if st.PerEpoch[0].DirtyPages == 0 || st.PerEpoch[1].DirtyPages != 0 {
		t.Fatalf("epoch shape wrong: %+v", st.PerEpoch)
	}
	if st.ObjectsCopied == 0 || st.BytesCopied == 0 {
		t.Fatalf("nothing shadowed: %+v", st)
	}
}

// TestRunConvergesOnStableRate exercises the live-migration plateau exit
// under a concurrent writer that keeps re-dirtying the same working set:
// the epoch loop must stop well before MaxEpochs instead of chasing it.
func TestRunConvergesOnStableRate(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	root := v1.Root()
	target := heapObjs(root)[0]
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf [8]byte
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := range buf {
				buf[j] = 0x80 | byte((i+j)&0x7f)
			}
			_ = root.Space().WriteAt(target.Addr, buf[:])
		}
	}()
	snap := New(v1, Options{MaxEpochs: 6})
	defer snap.Discard()
	st := snap.Run()
	close(stop)
	<-done
	if !st.Converged {
		t.Fatalf("steady writer should trigger the stable-rate exit: %+v", st)
	}
	if st.Epochs > 3 {
		t.Fatalf("converged too late for a stable dirty rate: %+v", st)
	}
}

// TestDiscardRestoresDirtyBits pins the rollback contract: consumed bits
// come back as soft-dirty, so a later checkpoint-free attempt still sees
// the full dirty-since-startup set.
func TestDiscardRestoresDirtyBits(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	dirtyHeap(t, v1, 1, 0)
	space := v1.Root().Space()
	before := space.SoftDirtyPages()
	if len(before) == 0 {
		t.Fatal("nothing dirty after dirtyHeap")
	}
	snap := New(v1, Options{})
	snap.Epoch()
	if got := space.SoftDirtyPages(); len(got) != 0 {
		t.Fatalf("epoch left %d pages soft-dirty", len(got))
	}
	if got := space.ConsumedDirtyPages(); !reflect.DeepEqual(got, before) {
		t.Fatalf("consumed pages %v != dirtied pages %v", got, before)
	}
	snap.Discard()
	if got := space.SoftDirtyPages(); !reflect.DeepEqual(got, before) {
		t.Fatalf("restored pages %v != dirtied pages %v", got, before)
	}
	if got := space.ConsumedDirtyPages(); len(got) != 0 {
		t.Fatalf("consumed marks survived discard: %v", got)
	}
	if ps := snap.ProcShadow(program.RootKey); ps != nil {
		t.Fatal("ProcShadow served after discard")
	}
}

// TestForkDuringPrecopyStaysAccountable covers the mid-pre-copy fork
// hazard: a child forked after epochs consumed the parent's bits inherits
// the consumed marks with its memory image, so its dirty-since-startup
// set (soft-dirty ∪ consumed) is exact, and Discard restores the child's
// bits too.
func TestForkDuringPrecopyStaysAccountable(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	dirtyHeap(t, v1, 1, 0)
	parentDirty := v1.Root().Space().SoftDirtyPages()

	snap := New(v1, Options{})
	snap.Epoch() // consumes the parent's bits

	if err := v1.RunHandler(func(th *program.Thread) error {
		_, err := th.ForkProc("late_child", func(ct *program.Thread) error {
			ct.Enter("late_child")
			defer ct.Exit()
			return idle(ct)
		})
		return err
	}); err != nil {
		t.Fatalf("fork: %v", err)
	}
	if _, err := v1.Barrier().WaitQuiesced(5 * time.Second); err != nil {
		t.Fatalf("child did not quiesce: %v", err)
	}
	var child *program.Proc
	for _, p := range v1.Procs() {
		if p.Key() != program.RootKey {
			child = p
		}
	}
	if child == nil {
		t.Fatal("no child process")
	}
	got := child.Space().ConsumedDirtyPages()
	if !reflect.DeepEqual(got, parentDirty) {
		t.Fatalf("child consumed pages %v != parent's pre-fork dirty set %v", got, parentDirty)
	}
	snap.Discard()
	if got := child.Space().SoftDirtyPages(); !reflect.DeepEqual(got, parentDirty) {
		t.Fatalf("discard did not restore the child's bits: %v vs %v", got, parentDirty)
	}
}

// TestEpochAfterDiscardHandsBitsBack pins the Epoch/Discard interleaving
// contract: an epoch that loses the race with Discard must hand the bits
// it just consumed back to the address space — otherwise a later
// checkpoint-free transfer would silently under-copy.
func TestEpochAfterDiscardHandsBitsBack(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	snap := New(v1, Options{})
	snap.Discard()
	dirtyHeap(t, v1, 1, 0)
	space := v1.Root().Space()
	before := space.SoftDirtyPages()
	es := snap.Epoch()
	if es.DirtyPages != 0 || es.ObjectsCopied != 0 {
		t.Fatalf("post-discard epoch did work: %+v", es)
	}
	if got := space.SoftDirtyPages(); !reflect.DeepEqual(got, before) {
		t.Fatalf("post-discard epoch leaked consumed bits: %v vs %v", got, before)
	}
	if got := space.ConsumedDirtyPages(); len(got) != 0 {
		t.Fatalf("consumed marks left behind: %v", got)
	}
}

// TestEpochRaceStress runs epochs concurrently with writers and shadow
// readers; under -race it shakes out unsynchronized access between the
// snapshotter, the running program and the transfer-side queries.
func TestEpochRaceStress(t *testing.T) {
	v1 := startInst(t, synthVersion(0, false), program.Options{}, nil, nil)
	defer v1.Terminate()
	root := v1.Root()
	objs := heapObjs(root)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf [8]byte
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			o := objs[i%len(objs)]
			for j := range buf {
				buf[j] = 0x80 | byte((i+j)&0x7f)
			}
			off := uint64(0)
			if o.Type == nil {
				off = o.Size - 8
			}
			_ = root.Space().WriteAt(o.Addr+mem.Addr(off), buf[:])
		}
	}()
	snap := New(v1, Options{MaxEpochs: 10, StableRatio: 2})
	defer snap.Discard()
	readerStop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			if ps := snap.ProcShadow(program.RootKey); ps != nil {
				ps.EverDirtyPages()
				for _, o := range objs[:4] {
					ps.Shadow(o)
				}
			}
		}
	}()
	snap.Run()
	close(stop)
	close(readerStop)
	<-done
	<-readerDone
	if snap.Stats().Epochs == 0 {
		t.Fatal("no epochs ran")
	}
}

// TestFinalEpochShadowsResidual pins the handoff-epoch contract: over a
// quiesced instance one final pass consumes everything still dirty, so
// the downtime copy is served entirely from shadows; its accounting stays
// out of the pre-quiesce epoch-loop stats; and the result is bit-identical
// to a checkpoint-free transfer over the same state.
func TestFinalEpochShadowsResidual(t *testing.T) {
	v1 := startInst(t, synthVersion(0, true), program.Options{}, nil, nil)
	defer v1.Terminate()
	dirtyHeap(t, v1, 1, 0) // whole heap written since startup
	snap := New(v1, Options{})
	snap.Run()
	dirtyHeap(t, v1, 2, 1) // residual working set after the epoch loop
	if _, err := v1.Quiesce(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	loop := snap.Stats()

	es := snap.FinalEpoch()
	if es.DirtyPages == 0 {
		t.Fatal("final epoch found no residual dirty pages")
	}
	st := snap.Stats()
	if !st.FinalRan || st.FinalPages != es.DirtyPages || st.FinalBytes != es.BytesCopied {
		t.Errorf("final stats not recorded: %+v vs epoch %+v", st, es)
	}
	if st.Epochs != loop.Epochs || st.PagesCopied != loop.PagesCopied ||
		len(st.PerEpoch) != len(loop.PerEpoch) {
		t.Errorf("final epoch leaked into the loop stats: %+v vs %+v", st, loop)
	}
	for _, p := range v1.Procs() {
		if n := len(p.Space().SoftDirtyPages()); n != 0 {
			t.Errorf("proc %s: %d pages still dirty after the final epoch", p.Key(), n)
		}
	}

	// Quiesced + drained: nothing can be re-dirtied, so every copied byte
	// comes from a shadow.
	pre, v2pre := transferInto(t, v1, true, 1, snap)
	defer v2pre.Terminate()
	if pre.BytesLive != 0 {
		t.Errorf("BytesLive = %d after the final epoch, want 0", pre.BytesLive)
	}
	if pre.BytesFromShadow != pre.BytesTransferred {
		t.Errorf("shadow bytes %d != transferred %d", pre.BytesFromShadow, pre.BytesTransferred)
	}

	// Discarding hands the consumed bits back; the checkpoint-free
	// transfer then moves the same objects with identical contents.
	snap.Discard()
	base, v2base := transferInto(t, v1, true, 1, nil)
	defer v2base.Terminate()
	if base.BytesTransferred != pre.BytesTransferred || base.ObjectsTransferred != pre.ObjectsTransferred {
		t.Errorf("final epoch changed the transfer scope: %d/%d bytes, %d/%d objects",
			pre.BytesTransferred, base.BytesTransferred,
			pre.ObjectsTransferred, base.ObjectsTransferred)
	}
	compareInstances(t, "final-epoch vs baseline", v2pre, v2base)
}

// TestProcShadowInvalidate pins the shadow-invalidation contract page
// adoption relies on: a donated object's shadow must never be served
// again, and the nil receiver (no checkpoint in flight) must be a no-op.
func TestProcShadowInvalidate(t *testing.T) {
	ps := &ProcShadow{shadows: make(map[*mem.Object][]byte)}
	a := &mem.Object{Addr: 0x1000, Size: 64}
	b := &mem.Object{Addr: 0x2000, Size: 64}
	ps.put(a, []byte{1, 2, 3})
	ps.put(b, []byte{4, 5, 6})
	if n := ps.ShadowObjects(); n != 2 {
		t.Fatalf("ShadowObjects = %d, want 2", n)
	}

	ps.Invalidate(a)
	if _, ok := ps.Shadow(a); ok {
		t.Error("invalidated shadow still served")
	}
	if buf, ok := ps.Shadow(b); !ok || len(buf) != 3 {
		t.Error("Invalidate disturbed an unrelated shadow")
	}
	if n := ps.ShadowObjects(); n != 1 {
		t.Errorf("ShadowObjects = %d after Invalidate, want 1", n)
	}

	// Idempotent, and safe for objects never captured.
	ps.Invalidate(a)
	ps.Invalidate(&mem.Object{Addr: 0x3000})

	// Nil receiver: the transfer calls Invalidate unconditionally even
	// when no checkpoint daemon captured shadows.
	var none *ProcShadow
	none.Invalidate(a)
}
